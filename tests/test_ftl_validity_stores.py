"""Unit tests for the baseline page-validity stores (RAM PVB, flash PVB, PVL)."""

import pytest

from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose
from repro.ftl.block_manager import BlockManager
from repro.ftl.validity.pvb_flash import FlashPVB
from repro.ftl.validity.pvb_ram import RamPVB
from repro.ftl.validity.pvl import PageValidityLog


@pytest.fixture
def config():
    return simulation_configuration(num_blocks=32, pages_per_block=8,
                                    page_size=256)


@pytest.fixture
def device(config):
    return FlashDevice(config)


@pytest.fixture
def manager(device):
    return BlockManager(device)


class TestRamPVB:
    def test_mark_and_query(self, config):
        pvb = RamPVB(config)
        pvb.mark_invalid(PhysicalAddress(3, 5))
        pvb.mark_invalid(PhysicalAddress(3, 1))
        assert pvb.invalid_offsets(3) == {1, 5}

    def test_unmarked_block_has_no_invalid_pages(self, config):
        assert RamPVB(config).invalid_offsets(7) == set()

    def test_erase_clears_block(self, config):
        pvb = RamPVB(config)
        pvb.mark_invalid(PhysicalAddress(2, 0))
        pvb.note_erase(2)
        assert pvb.invalid_offsets(2) == set()

    def test_no_flash_io(self, config, device):
        pvb = RamPVB(config)
        pvb.mark_invalid(PhysicalAddress(0, 0))
        pvb.invalid_offsets(0)
        assert device.stats.page_reads == 0
        assert device.stats.page_writes == 0

    def test_ram_bytes_is_one_bit_per_page(self, config):
        assert RamPVB(config).ram_bytes() == config.pvb_bytes

    def test_power_failure_loses_everything(self, config):
        pvb = RamPVB(config)
        pvb.mark_invalid(PhysicalAddress(1, 1))
        pvb.reset_ram_state()
        assert pvb.invalid_offsets(1) == set()

    def test_rebuild_restores_bitmap(self, config):
        pvb = RamPVB(config)
        pvb.rebuild({4: {1, 2}})
        assert pvb.invalid_offsets(4) == {1, 2}


class TestFlashPVB:
    def test_mark_and_query(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(3, 5))
        assert pvb.invalid_offsets(3) == {5}

    def test_update_costs_a_read_modify_write(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(0, 0))  # first write: no prior read
        reads_before = device.stats.total(IOKind.PAGE_READ, IOPurpose.VALIDITY)
        writes_before = device.stats.total(IOKind.PAGE_WRITE, IOPurpose.VALIDITY)
        pvb.mark_invalid(PhysicalAddress(0, 1))
        assert device.stats.total(IOKind.PAGE_READ,
                                  IOPurpose.VALIDITY) == reads_before + 1
        assert device.stats.total(IOKind.PAGE_WRITE,
                                  IOPurpose.VALIDITY) == writes_before + 1

    def test_gc_query_costs_one_read(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(0, 0))
        reads_before = device.stats.total(IOKind.PAGE_READ, IOPurpose.VALIDITY)
        pvb.invalid_offsets(0)
        assert device.stats.total(IOKind.PAGE_READ,
                                  IOPurpose.VALIDITY) == reads_before + 1

    def test_erase_clears_only_that_block(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(2, 3))
        pvb.mark_invalid(PhysicalAddress(3, 4))
        pvb.note_erase(2)
        assert pvb.invalid_offsets(2) == set()
        assert pvb.invalid_offsets(3) == {4}

    def test_old_versions_become_invalid_metadata(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(0, 0))
        pvb.mark_invalid(PhysicalAddress(0, 1))
        invalidated = sum(manager.metadata_invalid_count(block)
                          for block in range(device.config.num_blocks))
        assert invalidated >= 1

    def test_ram_footprint_is_directory_only(self, device, manager, config):
        pvb = FlashPVB(device, manager)
        assert pvb.ram_bytes() == 4 * pvb.num_pvb_pages
        assert pvb.ram_bytes() < config.pvb_bytes

    def test_migrate_page_preserves_contents(self, device, manager):
        pvb = FlashPVB(device, manager)
        pvb.mark_invalid(PhysicalAddress(1, 2))
        location = pvb._directory[pvb._pvb_page_of_block(1)]
        pvb.migrate_page(location)
        assert pvb.invalid_offsets(1) == {2}


class TestPageValidityLog:
    def test_mark_and_query_through_buffer(self, device, manager):
        pvl = PageValidityLog(device, manager)
        pvl.mark_invalid(PhysicalAddress(4, 2))
        assert pvl.invalid_offsets(4) == {2}

    def test_query_after_flush_reads_log_pages(self, device, manager):
        pvl = PageValidityLog(device, manager)
        pvl.mark_invalid(PhysicalAddress(4, 2))
        pvl.flush()
        reads_before = device.stats.total(IOKind.PAGE_READ, IOPurpose.VALIDITY)
        assert pvl.invalid_offsets(4) == {2}
        assert device.stats.total(IOKind.PAGE_READ,
                                  IOPurpose.VALIDITY) > reads_before

    def test_buffer_flushes_automatically_when_full(self, device, manager):
        pvl = PageValidityLog(device, manager)
        for offset in range(pvl.entries_per_page):
            pvl.mark_invalid(PhysicalAddress(offset % 8, offset % 4))
        assert device.stats.total(IOKind.PAGE_WRITE, IOPurpose.VALIDITY) >= 1

    def test_erase_obsoletes_older_entries(self, device, manager):
        pvl = PageValidityLog(device, manager)
        pvl.mark_invalid(PhysicalAddress(5, 1))
        pvl.flush()
        pvl.note_erase(5)
        assert pvl.invalid_offsets(5) == set()

    def test_entries_after_erase_are_still_reported(self, device, manager):
        pvl = PageValidityLog(device, manager)
        pvl.note_erase(5)
        pvl.mark_invalid(PhysicalAddress(5, 3))
        assert pvl.invalid_offsets(5) == {3}

    def test_cleaning_bounds_log_size(self, device, manager):
        pvl = PageValidityLog(device, manager, log_size_pages=2)
        # Insert entries for blocks that are then erased, so cleaning drops them.
        for round_number in range(6):
            block = round_number % 4
            for offset in range(pvl.entries_per_page):
                pvl.mark_invalid(PhysicalAddress(block, offset % 8))
            pvl.note_erase(block)
        pvl.flush()
        assert len(pvl._log_pages) <= 4  # bound plus the bounded-cleaning slack

    def test_ram_bytes_scales_with_blocks(self, device, manager, config):
        pvl = PageValidityLog(device, manager)
        assert pvl.ram_bytes() >= 8 * config.num_blocks
