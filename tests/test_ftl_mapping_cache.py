"""Unit tests for the LRU mapping cache, its flags, and checkpoint symbols."""

import pytest

from repro.flash.address import PhysicalAddress
from repro.ftl.mapping_cache import CachedMapping, MappingCache


@pytest.fixture
def cache():
    return MappingCache(capacity=4, entries_per_translation_page=8)


def entry(logical, block=0, page=0, **flags):
    return CachedMapping(logical, PhysicalAddress(block, page), **flags)


class TestBasicOperations:
    def test_put_and_get(self, cache):
        cache.put(entry(1, 2, 3))
        assert cache.get(1).physical == PhysicalAddress(2, 3)

    def test_get_missing_returns_none(self, cache):
        assert cache.get(99) is None

    def test_contains(self, cache):
        cache.put(entry(5))
        assert 5 in cache
        assert 6 not in cache

    def test_len_counts_real_entries_only(self, cache):
        cache.put(entry(1))
        cache.insert_checkpoint_symbol()
        assert len(cache) == 1

    def test_remove_returns_entry(self, cache):
        cache.put(entry(1))
        removed = cache.remove(1)
        assert removed.logical == 1
        assert 1 not in cache

    def test_clear_empties_cache(self, cache):
        cache.put(entry(1, dirty=True))
        cache.clear()
        assert len(cache) == 0
        assert cache.dirty_count == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MappingCache(capacity=0, entries_per_translation_page=8)

    def test_ram_bytes_is_capacity_times_entry_size(self, cache):
        assert cache.ram_bytes == 4 * 8


class TestLRUOrder:
    def test_pop_lru_returns_oldest(self, cache):
        cache.put(entry(1))
        cache.put(entry(2))
        assert cache.pop_lru().logical == 1

    def test_get_refreshes_recency(self, cache):
        cache.put(entry(1))
        cache.put(entry(2))
        cache.get(1)
        assert cache.pop_lru().logical == 2

    def test_peek_does_not_refresh_recency(self, cache):
        cache.put(entry(1))
        cache.put(entry(2))
        cache.peek(1)
        assert cache.pop_lru().logical == 1

    def test_pop_lru_skips_checkpoint_symbols(self, cache):
        cache.insert_checkpoint_symbol()
        cache.put(entry(1))
        assert cache.pop_lru().logical == 1

    def test_pop_lru_on_empty_cache(self, cache):
        assert cache.pop_lru() is None


class TestDirtyTracking:
    def test_dirty_count_tracks_puts(self, cache):
        cache.put(entry(1, dirty=True))
        cache.put(entry(2, dirty=False))
        assert cache.dirty_count == 1

    def test_mark_dirty_and_clean(self, cache):
        cache.put(entry(1, dirty=False))
        cache.mark_dirty(1, True)
        assert cache.dirty_count == 1
        cache.mark_dirty(1, False)
        assert cache.dirty_count == 0

    def test_mark_dirty_unknown_logical_raises(self, cache):
        with pytest.raises(KeyError):
            cache.mark_dirty(7, True)

    def test_replacing_dirty_entry_keeps_count_exact(self, cache):
        cache.put(entry(1, dirty=True))
        cache.put(entry(1, dirty=False))
        assert cache.dirty_count == 0

    def test_remove_dirty_entry_decrements_count(self, cache):
        cache.put(entry(1, dirty=True))
        cache.remove(1)
        assert cache.dirty_count == 0


class TestTranslationPageIndex:
    def test_translation_page_of(self, cache):
        assert cache.translation_page_of(0) == 0
        assert cache.translation_page_of(7) == 0
        assert cache.translation_page_of(8) == 1

    def test_cached_logicals_on_translation_page(self, cache):
        cache.put(entry(1))
        cache.put(entry(9))
        cache.put(entry(2))
        assert cache.cached_logicals_on_translation_page(0) == [1, 2]
        assert cache.cached_logicals_on_translation_page(1) == [9]

    def test_dirty_entries_on_translation_page(self, cache):
        cache.put(entry(1, dirty=True))
        cache.put(entry(2, dirty=False))
        cache.put(entry(3, dirty=True))
        dirty = cache.dirty_entries_on_translation_page(0)
        assert sorted(item.logical for item in dirty) == [1, 3]

    def test_index_cleaned_on_remove(self, cache):
        cache.put(entry(1))
        cache.remove(1)
        assert cache.cached_logicals_on_translation_page(0) == []


class TestCheckpointSymbols:
    def test_entries_older_than_symbol(self, cache):
        cache.put(entry(1))
        cache.put(entry(2))
        symbol = cache.insert_checkpoint_symbol()
        cache.put(entry(3))
        older = cache.entries_older_than_symbol(symbol)
        assert sorted(item.logical for item in older) == [1, 2]

    def test_touched_entries_move_past_the_symbol(self, cache):
        cache.put(entry(1))
        symbol = cache.insert_checkpoint_symbol()
        cache.get(1)  # refresh: no longer older than the symbol
        assert cache.entries_older_than_symbol(symbol) == []

    def test_remove_checkpoint_symbol(self, cache):
        symbol = cache.insert_checkpoint_symbol()
        cache.remove_checkpoint_symbol(symbol)
        assert cache.entries_older_than_symbol(symbol) == []

    def test_symbols_do_not_collide_with_logicals(self, cache):
        symbol = cache.insert_checkpoint_symbol()
        assert symbol < 0
