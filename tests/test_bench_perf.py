"""Tests for the performance microbenchmark suite and BENCH records."""

import json

import pytest

from repro.bench.perf import (
    BENCH_CASES,
    BENCH_SCHEMA_VERSION,
    bench_names,
    compare_records,
    load_records,
    record_path,
    run_benchmark,
    run_benchmarks,
    speedup_summary,
    write_record,
)
from repro.cli import main

#: The named benchmarks, in reporting order (gecko_gc_query joined the
#: original five with the columnar Gecko rewrite, gecko_recovery with the
#: crash-recovery scenario engine, submit_batch/device_array_fill with the
#: batch-vectorized submit path and the multi-device data plane).
EXPECTED_NAMES = ["device_fill", "gecko_update", "gecko_merge",
                  "gecko_gc_query", "gecko_recovery",
                  "dftl_cache_miss", "submit_batch", "device_array_fill",
                  "sweep_cell", "latency_sweep",
                  "obs_overhead", "store_append", "trace_replay"]


def _record(name, ops_per_sec, quick=True, **extra):
    base = {"schema": BENCH_SCHEMA_VERSION, "name": name, "ops": 1000,
            "wall_seconds": 1.0, "ops_per_sec": ops_per_sec, "repeats": 1,
            "quick": quick, "geometry": {}, "git_sha": None,
            "python": "3.11.0", "unix_time": 0}
    base.update(extra)
    return base


class TestRegistry:
    def test_all_benchmarks_are_registered(self):
        assert bench_names() == EXPECTED_NAMES
        assert set(BENCH_CASES) == set(EXPECTED_NAMES)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_benchmark("nope")
        with pytest.raises(KeyError):
            run_benchmarks(names=["device_fill", "nope"])

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_benchmark("device_fill", repeats=0)


class TestRunning:
    def test_device_fill_record_schema(self):
        record = run_benchmark("device_fill", quick=True, repeats=1)
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["name"] == "device_fill"
        assert record["quick"] is True
        assert record["repeats"] == 1
        assert record["ops"] == record["geometry"]["num_blocks"] * \
            record["geometry"]["pages_per_block"]
        assert record["wall_seconds"] > 0
        assert record["ops_per_sec"] == pytest.approx(
            record["ops"] / record["wall_seconds"], rel=1e-3)
        assert set(record) >= {"git_sha", "python", "unix_time", "geometry"}

    def test_write_and_load_roundtrip(self, tmp_path):
        record = run_benchmark("device_fill", quick=True, repeats=1)
        path = write_record(record, tmp_path)
        assert path == record_path(tmp_path, "device_fill")
        assert path.name == "BENCH_device_fill.json"
        loaded = load_records(tmp_path)
        assert loaded == {"device_fill": record}
        assert load_records(path) == loaded

    def test_run_benchmarks_writes_selected_records(self, tmp_path):
        records = run_benchmarks(names=["device_fill"], quick=True,
                                 repeats=1, out_dir=tmp_path)
        assert [record["name"] for record in records] == ["device_fill"]
        assert record_path(tmp_path, "device_fill").exists()

    def test_load_rejects_future_schema(self, tmp_path):
        write_record(_record("x", 1.0, schema=BENCH_SCHEMA_VERSION + 1),
                     tmp_path)
        with pytest.raises(ValueError, match="schema version"):
            load_records(tmp_path)

    def test_load_rejects_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records(tmp_path)


class TestCompare:
    def test_within_tolerance_is_ok(self):
        rows, regressions = compare_records(
            {"a": _record("a", 100.0)}, {"a": _record("a", 80.0)},
            tolerance=0.30)
        assert regressions == []
        assert rows[0]["status"] == "ok"
        assert rows[0]["ratio"] == pytest.approx(0.8)

    def test_regression_beyond_tolerance_is_flagged(self):
        rows, regressions = compare_records(
            {"a": _record("a", 100.0)}, {"a": _record("a", 60.0)},
            tolerance=0.30)
        assert regressions == ["a"]
        assert rows[0]["status"] == "REGRESSION"

    def test_one_sided_benchmarks_never_regress(self):
        rows, regressions = compare_records(
            {"old": _record("old", 10.0)}, {"new": _record("new", 10.0)})
        assert regressions == []
        assert {row["status"] for row in rows} == {"baseline-only", "new"}

    def test_quick_full_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="quick"):
            compare_records({"a": _record("a", 1.0, quick=True)},
                            {"a": _record("a", 1.0, quick=False)})

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_records({}, {}, tolerance=1.5)

    def test_speedup_summary(self):
        summary = speedup_summary(
            {"a": _record("a", 100.0), "b": _record("b", 10.0)},
            {"a": _record("a", 250.0), "c": _record("c", 1.0)})
        assert summary == {"a": 2.5}


class TestCli:
    def test_bench_runs_and_writes_records(self, tmp_path, capsys):
        out = tmp_path / "records"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "device_fill", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "Microbenchmarks (quick, best of 1)" in output
        record = json.loads(
            (out / "BENCH_device_fill.json").read_text(encoding="utf-8"))
        assert record["name"] == "device_fill"

    def test_bench_unknown_name_exits_2(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_compare_ok_exits_0(self, tmp_path, capsys):
        base, new = tmp_path / "base", tmp_path / "new"
        write_record(_record("a", 100.0), base)
        write_record(_record("a", 95.0), new)
        assert main(["bench", "--compare", str(base), str(new)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_1(self, tmp_path, capsys):
        base, new = tmp_path / "base", tmp_path / "new"
        write_record(_record("a", 100.0), base)
        write_record(_record("a", 10.0), new)
        assert main(["bench", "--compare", str(base), str(new)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "a" in captured.err

    def test_compare_custom_tolerance(self, tmp_path):
        base, new = tmp_path / "base", tmp_path / "new"
        write_record(_record("a", 100.0), base)
        write_record(_record("a", 80.0), new)
        assert main(["bench", "--compare", str(base), str(new),
                     "--tolerance", "0.10"]) == 1
        assert main(["bench", "--compare", str(base), str(new),
                     "--tolerance", "0.30"]) == 0

    def test_compare_disjoint_records_exits_2(self, tmp_path, capsys):
        base, new = tmp_path / "base", tmp_path / "new"
        write_record(_record("a", 100.0), base)
        write_record(_record("b", 100.0), new)
        assert main(["bench", "--compare", str(base), str(new)]) == 2
        assert "share no" in capsys.readouterr().err

    def test_compare_missing_path_exits_2(self, tmp_path, capsys):
        write_record(_record("a", 100.0), tmp_path)
        assert main(["bench", "--compare", str(tmp_path),
                     str(tmp_path / "missing")]) == 2
        assert "failed" in capsys.readouterr().err


class TestCheckedInBaseline:
    """The CI perf job compares quick runs against benchmarks/baselines."""

    def test_baseline_records_exist_for_every_benchmark(self):
        from pathlib import Path
        baselines = Path(__file__).parent.parent / "benchmarks" / "baselines"
        records = load_records(baselines)
        assert set(records) == set(EXPECTED_NAMES)
        for record in records.values():
            assert record["quick"] is True, (
                "CI compares --quick runs; baselines must be quick records")
