"""Victim-selection determinism: argmin must match the historical scan.

The greedy/metadata-aware victim scan historically walked block ids in
ascending order with a strict ``<`` comparison, so the lowest block id wins
every valid-count tie. The argmin rewrite must keep that exact tie-break:
these tests pin synthetic tie scenarios directly and lock full victim
sequences from seeded runs against a golden generated with the pre-rewrite
scan (``tests/data/victim_golden.json``).
"""

import json
from pathlib import Path

import pytest

from repro.api.session import SimulationSession
from repro.flash.config import simulation_configuration
from repro.ftl.block_manager import BlockType
from repro.workloads.generators import UniformRandomWrites

GOLDEN_PATH = Path(__file__).parent / "data" / "victim_golden.json"


def record_victim_sequence(ftl_name: str, seed: int, operations: int,
                           cache_capacity: int = 64):
    """Run a seeded update workload and record every chosen GC victim."""
    config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                      page_size=256)
    session = SimulationSession(ftl=ftl_name, device=config,
                                ftl_kwargs={"cache_capacity": cache_capacity})
    collector = session.ftl.garbage_collector
    victims = []
    original = collector.choose_victim

    def recording_choose_victim(*args, **kwargs):
        victim = original(*args, **kwargs)
        victims.append(victim)
        return victim

    collector.choose_victim = recording_choose_victim
    session.warmup()
    workload = UniformRandomWrites(config.logical_pages, seed=seed)
    session.run(workload, operations)
    return victims


SCENARIOS = [
    ("GeckoFTL", 7, 1200),
    ("DFTL", 7, 1200),
    ("GeckoFTL", 23, 800),
    ("DFTL", 23, 800),
]


class TestVictimSequenceGolden:
    @pytest.mark.parametrize("ftl_name,seed,operations", SCENARIOS)
    def test_matches_pre_argmin_scan(self, ftl_name, seed, operations):
        golden = json.loads(GOLDEN_PATH.read_text())
        key = f"{ftl_name}-seed{seed}-ops{operations}"
        assert key in golden, f"golden is missing scenario {key}"
        victims = record_victim_sequence(ftl_name, seed, operations)
        assert victims == golden[key]


class TestTieBreaking:
    """Direct tie scenarios: the lowest block id must win, deterministically."""

    def _fresh_ftl(self, ftl_name: str):
        config = simulation_configuration(num_blocks=32, pages_per_block=8,
                                          page_size=256)
        session = SimulationSession(ftl=ftl_name, device=config,
                                    ftl_kwargs={"cache_capacity": 32})
        session.warmup()
        return session.ftl

    @pytest.mark.parametrize("ftl_name", ["DFTL", "GeckoFTL"])
    def test_all_tied_counts_choose_lowest_id(self, ftl_name):
        ftl = self._fresh_ftl(ftl_name)
        collector = ftl.garbage_collector
        bvc = ftl.bvc
        manager = ftl.block_manager
        active = set(manager.active_blocks.values())
        user_blocks = [block_id
                       for block_id in range(ftl.config.num_blocks)
                       if manager.info[block_id].block_type is BlockType.USER
                       and block_id not in active
                       and ftl.device.block(block_id).written_pages > 0]
        assert len(user_blocks) >= 2, "warmup left too few candidate blocks"
        # Force an exact tie across every candidate.
        for block_id in user_blocks:
            bvc.set_count(block_id, 3)
        assert collector.choose_victim() == min(user_blocks)

    @pytest.mark.parametrize("ftl_name", ["DFTL", "GeckoFTL"])
    def test_two_way_tie_is_stable_across_calls(self, ftl_name):
        ftl = self._fresh_ftl(ftl_name)
        collector = ftl.garbage_collector
        bvc = ftl.bvc
        manager = ftl.block_manager
        active = set(manager.active_blocks.values())
        user_blocks = sorted(
            block_id for block_id in range(ftl.config.num_blocks)
            if manager.info[block_id].block_type is BlockType.USER
            and block_id not in active
            and ftl.device.block(block_id).written_pages > 0)
        assert len(user_blocks) >= 3
        low, high = user_blocks[0], user_blocks[-1]
        for block_id in user_blocks:
            bvc.set_count(block_id, 5)
        bvc.set_count(low, 2)
        bvc.set_count(high, 2)
        for _ in range(3):
            assert collector.choose_victim() == low
