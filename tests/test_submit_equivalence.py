"""The batched submission queue must be IO-trace equivalent to per-op calls.

Acceptance criterion of the SimulationSession redesign: for a fixed seed,
``PageMappedFTL.submit`` must produce *identical* IOStats — total write
amplification and the per-purpose breakdown — to dispatching the same
operations one at a time through ``write``/``read``/``trim``.
"""

import random

import pytest

from repro.bench.harness import build_ftl
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.workloads.base import Operation, OpKind, WorkloadRunner, fill_device


def small_config():
    return simulation_configuration(num_blocks=64, pages_per_block=8,
                                    page_size=256)


def mixed_operations(logical_pages, count, seed):
    """Deterministic mixed write/read/trim stream over a filled device."""
    rng = random.Random(seed)
    operations = []
    for index in range(count):
        roll = rng.random()
        logical = rng.randrange(logical_pages)
        if roll < 0.70:
            operations.append(Operation(OpKind.WRITE, logical,
                                        ("v", logical, index)))
        elif roll < 0.90:
            operations.append(Operation(OpKind.READ, logical))
        else:
            operations.append(Operation(OpKind.TRIM, logical))
    return operations


def run_per_op(ftl, operations):
    for operation in operations:
        if operation.kind is OpKind.WRITE:
            ftl.write(operation.logical, operation.payload)
        elif operation.kind is OpKind.READ:
            ftl.read(operation.logical)
        else:
            ftl.trim(operation.logical)


def run_batched(ftl, operations, batch_size):
    for start in range(0, len(operations), batch_size):
        ftl.submit(operations[start:start + batch_size])


def fill_per_op(ftl):
    for logical in range(ftl.config.logical_pages):
        ftl.write(logical, ("init", logical))


@pytest.mark.parametrize("ftl_name", ["DFTL", "LazyFTL", "uFTL", "IB-FTL",
                                      "GeckoFTL"])
@pytest.mark.parametrize("batch_size", [1, 7, 4096])
def test_submit_matches_per_op_iostats(ftl_name, batch_size):
    config = small_config()
    operations = mixed_operations(config.logical_pages, 1200, seed=17)

    reference = build_ftl(ftl_name, FlashDevice(config), cache_capacity=64)
    fill_per_op(reference)
    reference.stats.reset()
    run_per_op(reference, operations)

    batched = build_ftl(ftl_name, FlashDevice(config), cache_capacity=64)
    fill_device(batched)  # the batched warm-up path
    batched.stats.reset()
    run_batched(batched, operations, batch_size)

    assert batched.stats.counts == reference.stats.counts
    assert batched.stats.host_writes == reference.stats.host_writes
    assert batched.stats.host_reads == reference.stats.host_reads
    delta = config.delta
    assert batched.stats.write_amplification(delta) == pytest.approx(
        reference.stats.write_amplification(delta))
    assert batched.stats.breakdown() == reference.stats.breakdown()


def test_batched_warmup_matches_per_op_fill():
    config = small_config()
    reference = build_ftl("GeckoFTL", FlashDevice(config), cache_capacity=64)
    fill_per_op(reference)
    batched = build_ftl("GeckoFTL", FlashDevice(config), cache_capacity=64)
    fill_device(batched)
    assert batched.stats.counts == reference.stats.counts
    for logical in (0, config.logical_pages - 1):
        assert batched.read(logical) == reference.read(logical)


def test_runner_batching_matches_per_op_dispatch():
    """The runner's batch cutting must not change interval measurements."""
    config = small_config()
    operations = mixed_operations(config.logical_pages, 900, seed=3)

    class FixedWorkload:
        logical_pages = config.logical_pages

        def operations(self, count):
            return iter(operations[:count])

        def reset(self):
            pass

    reference = build_ftl("DFTL", FlashDevice(config), cache_capacity=64)
    fill_per_op(reference)
    reference.stats.reset()
    ref_stats = reference.stats
    ref_start = ref_stats.snapshot()
    run_per_op(reference, operations)
    reference_total = ref_stats.diff(ref_start)

    batched = build_ftl("DFTL", FlashDevice(config), cache_capacity=64)
    fill_device(batched)
    batched.stats.reset()
    runner = WorkloadRunner(batched, interval_writes=100, max_batch_ops=64)
    result = runner.run(FixedWorkload(), len(operations))

    assert result.operations_executed == len(operations)
    assert result.final_stats.counts == reference_total.counts
    assert result.host_writes == reference_total.host_writes
    assert sum(i.host_writes for i in result.intervals) == result.host_writes


def test_submit_returns_batch_accounting():
    config = small_config()
    ftl = build_ftl("DFTL", FlashDevice(config), cache_capacity=64)
    fill_device(ftl)
    operations = [Operation(OpKind.WRITE, 1, ("v", 1, 0)),
                  Operation(OpKind.READ, 1),
                  Operation(OpKind.TRIM, 2),
                  Operation(OpKind.READ, 2)]
    result = ftl.submit(operations, collect_payloads=True)
    assert result.submitted == 4
    assert result.host_writes == 1
    assert result.host_reads == 2
    assert result.host_trims == 1
    assert result.payloads == [("v", 1, 0), None]
    assert result.stats_delta.host_writes == 1
    assert result.stats_delta.page_writes >= 1


def test_submit_rejects_out_of_range_writes():
    config = small_config()
    ftl = build_ftl("DFTL", FlashDevice(config), cache_capacity=64)
    with pytest.raises(ValueError):
        ftl.submit([Operation(OpKind.WRITE, config.logical_pages, None)])
