"""Tests for TimingSpec parsing and the TimingModel virtual clock."""

import pytest

from repro.flash.config import LatencyConfig
from repro.flash.stats import IOKind, IOPurpose
from repro.timing import (BACKGROUND_PURPOSES, DEVICE_PRESETS, TimingModel,
                          TimingSpec)


class TestTimingSpec:
    def test_presets_resolve(self):
        for name in DEVICE_PRESETS:
            spec = TimingSpec.preset(name)
            assert spec.to_dict() == DEVICE_PRESETS[name]
            assert str(spec) == name

    def test_paper_preset_matches_latency_config_defaults(self):
        spec = TimingSpec.preset("paper")
        assert spec.latency == LatencyConfig()

    def test_parse_shorthand(self):
        spec = TimingSpec.parse("slc(channels=8, planes=1)")
        assert spec.channels == 8
        assert spec.planes_per_channel == 1
        assert spec.page_read_us == DEVICE_PRESETS["slc"]["page_read_us"]
        assert spec.units == 8

    def test_of_accepts_spec_string_dict(self):
        spec = TimingSpec.preset("mlc")
        assert TimingSpec.of(spec) is spec
        assert TimingSpec.of("mlc") == spec
        assert TimingSpec.of(spec.to_dict()) == spec
        assert TimingSpec.of({"preset": "mlc"}) == spec
        assert TimingSpec.of({"preset": "mlc", "channels": 2}).channels == 2

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown timing preset"):
            TimingSpec.preset("tlc")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown timing field"):
            TimingSpec.from_dict({"page_read_ns": 5})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TimingSpec(page_read_us=-1.0)
        with pytest.raises(ValueError):
            TimingSpec(channels=0)

    def test_of_rejects_other_types(self):
        with pytest.raises(TypeError):
            TimingSpec.of(42)

    def test_from_latency(self):
        latency = LatencyConfig(page_read_us=1.0, page_write_us=2.0,
                                block_erase_us=3.0)
        spec = TimingSpec.from_latency(latency, channels=2,
                                       planes_per_channel=3)
        assert spec.latency == latency
        assert spec.units == 6


def serial_model(**overrides):
    values = dict(page_read_us=10.0, page_write_us=100.0,
                  block_erase_us=1000.0, spare_read_us=1.0,
                  spare_write_us=2.0, bus_transfer_us=0.0,
                  channels=1, planes_per_channel=1)
    values.update(overrides)
    return TimingModel(TimingSpec(**values))


class TestTimingModel:
    def test_bare_ops_advance_clock(self):
        model = serial_model()
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.record(IOKind.PAGE_READ, 1, IOPurpose.USER)
        assert model.now == pytest.approx(110.0)
        assert model.requests == 0  # bare ops are not host requests

    def test_request_latency_is_foreground_chain(self):
        model = serial_model()
        model.begin_request("write")
        model.record(IOKind.SPARE_READ, 0, IOPurpose.TRANSLATION)
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.end_request()
        assert model.requests == 1
        assert model.sketch.max_us == pytest.approx(101.0)
        assert model.now == pytest.approx(101.0)

    def test_background_ops_do_not_extend_the_request(self):
        model = serial_model()
        model.begin_request("write")
        model.record(IOKind.BLOCK_ERASE, 1, IOPurpose.GC)  # different unit
        model.record(IOKind.PAGE_WRITE, 1, IOPurpose.USER)
        model.end_request()
        # Serial device: one unit only, so the erase *does* block the write.
        assert model.sketch.max_us == pytest.approx(1100.0)

        parallel = serial_model(channels=2)
        parallel.begin_request("write")
        parallel.record(IOKind.BLOCK_ERASE, 1, IOPurpose.GC)   # unit 1
        parallel.record(IOKind.PAGE_WRITE, 2, IOPurpose.USER)  # unit 0
        parallel.end_request()
        # Two units: the GC erase runs on the other unit, zero HOL blocking.
        assert parallel.sketch.max_us == pytest.approx(100.0)

    def test_head_of_line_blocking_inherits_remaining_time(self):
        model = serial_model(channels=2)
        # Request 1 leaves a GC erase in flight on unit 0.
        model.begin_request("write")
        model.record(IOKind.BLOCK_ERASE, 0, IOPurpose.GC)
        model.record(IOKind.PAGE_WRITE, 1, IOPurpose.USER)  # unit 1, 100us
        model.end_request()
        assert model.now == pytest.approx(100.0)
        # Request 2 lands on unit 0 while the erase (until t=1000) drains.
        model.begin_request("write")
        model.record(IOKind.PAGE_WRITE, 2, IOPurpose.USER)  # unit 0
        model.end_request()
        assert model.sketch.max_us == pytest.approx(1000.0)  # 900 + 100

    def test_round_robin_striping_by_block_id(self):
        model = serial_model(channels=4)
        model.begin_request("write")
        for block in range(4):  # four different units: perfect overlap
            model.record(IOKind.PAGE_WRITE, block, IOPurpose.USER)
        model.end_request()
        # Foreground ops chain on the cursor even across units, but each
        # dispatch starts at the chain position, not behind a busy unit.
        assert model.sketch.max_us == pytest.approx(400.0)
        follow = serial_model(channels=4)
        follow.begin_request("write")
        for _ in range(4):  # same unit every time: identical here
            follow.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        follow.end_request()
        assert follow.sketch.max_us == pytest.approx(400.0)

    def test_nested_requests_share_the_outermost(self):
        model = serial_model()
        model.begin_request("write")
        model.begin_request("read")
        model.record(IOKind.PAGE_READ, 0, IOPurpose.USER)
        model.end_request()
        assert model.in_request
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.end_request()
        assert not model.in_request
        assert model.requests == 1
        assert "write" in model.kind_sketches
        assert "read" not in model.kind_sketches

    def test_abort_request_records_no_sample(self):
        model = serial_model()
        model.begin_request("write")
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.abort_request()
        assert model.requests == 0
        assert model.sketch.count == 0
        assert not model.in_request
        assert model.now == pytest.approx(100.0)  # spent time stays spent

    def test_reset_capture_keeps_clock_and_busy_state(self):
        model = serial_model()
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.begin_request("write")
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.end_request()
        clock = model.now
        model.reset_capture()
        assert model.now == clock
        assert model.requests == 0
        assert model.sketch.count == 0
        assert model.virtual_seconds == 0.0

    def test_throughput_is_requests_per_virtual_second(self):
        model = serial_model()
        for _ in range(10):
            model.begin_request("write")
            model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
            model.end_request()
        assert model.virtual_seconds == pytest.approx(10 * 100.0 / 1e6)
        assert model.throughput_ops_s == pytest.approx(10_000.0)

    def test_bus_transfer_charged_on_page_ops_only(self):
        model = serial_model(bus_transfer_us=5.0)
        model.record(IOKind.PAGE_READ, 0, IOPurpose.USER)
        model.record(IOKind.SPARE_READ, 0, IOPurpose.USER)
        assert model.now == pytest.approx(10.0 + 5.0 + 1.0)

    def test_summary_and_row_fields_shape(self):
        model = serial_model()
        model.begin_request("write")
        model.record(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        model.end_request()
        summary = model.summary()
        assert summary["requests"] == 1
        assert summary["kinds"]["write"]["count"] == 1
        assert set(model.row_fields()) == {"throughput_ops_s", "p50_us",
                                           "p99_us", "p999_us"}

    def test_background_purposes_are_the_housekeeping_set(self):
        assert BACKGROUND_PURPOSES == {IOPurpose.GC, IOPurpose.WEAR,
                                       IOPurpose.VALIDITY}

    def test_model_coerces_spec_forms(self):
        assert TimingModel("slc").spec == TimingSpec.preset("slc")
        assert TimingModel(None).spec == TimingSpec()
