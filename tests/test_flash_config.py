"""Unit tests for device configuration and derived geometry."""

import pytest

from repro.flash.config import (
    DeviceConfig,
    LatencyConfig,
    paper_configuration,
    simulation_configuration,
)
from repro.flash.errors import ConfigurationError


class TestDeviceConfigValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(num_blocks=0)

    def test_rejects_zero_pages_per_block(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(pages_per_block=0)

    def test_rejects_zero_page_size(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(page_size=0)

    def test_rejects_logical_ratio_of_one(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(logical_ratio=1.0)

    def test_rejects_negative_logical_ratio(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(logical_ratio=-0.1)

    def test_rejects_zero_max_erase_count(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(max_erase_count=0)


class TestDerivedGeometry:
    def test_physical_pages(self):
        config = DeviceConfig(num_blocks=10, pages_per_block=4, page_size=512)
        assert config.physical_pages == 40

    def test_physical_capacity_bytes(self):
        config = DeviceConfig(num_blocks=10, pages_per_block=4, page_size=512)
        assert config.physical_capacity_bytes == 40 * 512

    def test_logical_pages_respects_ratio(self):
        config = DeviceConfig(num_blocks=10, pages_per_block=10,
                              page_size=512, logical_ratio=0.7)
        assert config.logical_pages == 70

    def test_spare_area_is_a_32th_of_a_page(self):
        config = DeviceConfig(page_size=4096)
        assert config.spare_area_bytes == 128

    def test_mapping_entries_per_page(self):
        config = DeviceConfig(page_size=4096)
        assert config.mapping_entries_per_page == 1024

    def test_translation_table_bytes(self):
        config = DeviceConfig(num_blocks=16, pages_per_block=8,
                              page_size=512, logical_ratio=0.5)
        assert config.translation_table_bytes == config.logical_pages * 4

    def test_num_translation_pages_covers_all_logical_pages(self):
        config = simulation_configuration()
        covered = config.num_translation_pages * config.mapping_entries_per_page
        assert covered >= config.logical_pages

    def test_pvb_bytes_is_one_bit_per_physical_page(self):
        config = DeviceConfig(num_blocks=16, pages_per_block=16)
        assert config.pvb_bytes == 16 * 16 // 8

    def test_scaled_overrides_fields(self):
        config = simulation_configuration()
        bigger = config.scaled(num_blocks=config.num_blocks * 2)
        assert bigger.num_blocks == config.num_blocks * 2
        assert bigger.page_size == config.page_size

    def test_describe_contains_key_terms(self):
        summary = simulation_configuration().describe()
        assert "num_blocks (K)" in summary
        assert "delta" in summary


class TestLatency:
    def test_default_delta_is_ten(self):
        assert LatencyConfig().delta == pytest.approx(10.0)

    def test_custom_delta(self):
        latency = LatencyConfig(page_read_us=50, page_write_us=500)
        assert latency.delta == pytest.approx(10.0)

    def test_config_exposes_delta(self):
        assert simulation_configuration().delta == pytest.approx(10.0)


class TestPresets:
    def test_paper_configuration_is_two_terabytes(self):
        config = paper_configuration()
        assert config.physical_capacity_bytes == 2**41  # 2 TB

    def test_paper_configuration_matches_figure2_terms(self):
        config = paper_configuration()
        assert config.num_blocks == 2**22
        assert config.pages_per_block == 2**7
        assert config.page_size == 2**12
        assert config.logical_ratio == pytest.approx(0.7)

    def test_simulation_configuration_is_small(self):
        config = simulation_configuration()
        assert config.physical_capacity_bytes < 2**25
