"""Additional coverage for Logarithmic Gecko internals and storage backends."""

import pytest

from repro.core.gecko_entry import EntryLayout
from repro.core.logarithmic_gecko import GeckoConfig, LogarithmicGecko
from repro.core.storage import FlashGeckoStorage, InMemoryGeckoStorage
from repro.core.run import GeckoPagePayload
from repro.core.gecko_entry import GeckoEntry
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose
from repro.ftl.block_manager import BlockManager, BlockType


def make_gecko(storage=None, size_ratio=2):
    layout = EntryLayout(pages_per_block=8, page_size=128)
    return LogarithmicGecko(GeckoConfig(size_ratio=size_ratio, layout=layout),
                            storage=storage or InMemoryGeckoStorage())


class TestInMemoryStorage:
    def test_allocate_returns_distinct_addresses(self):
        storage = InMemoryGeckoStorage()
        assert storage.allocate() != storage.allocate()

    def test_write_read_roundtrip(self):
        storage = InMemoryGeckoStorage()
        address = storage.allocate()
        payload = GeckoPagePayload.from_entries(
            run_id=1, level=0, sequence=0, is_last=True,
            entries=(GeckoEntry(3, bitmap=1),), manifest=(1,))
        storage.write(address, payload)
        read_back = storage.read(address)
        assert read_back.entries[0].block_id == 3
        assert storage.reads == 1 and storage.writes == 1

    def test_invalidate_reduces_live_pages(self):
        storage = InMemoryGeckoStorage()
        address = storage.allocate()
        storage.write(address, GeckoPagePayload(1, 0, 0, True, ()))
        assert storage.live_pages == 1
        storage.invalidate(address)
        assert storage.live_pages == 0


class TestFlashStorage:
    @pytest.fixture
    def setup(self):
        device = FlashDevice(simulation_configuration(num_blocks=32,
                                                      pages_per_block=8,
                                                      page_size=256))
        manager = BlockManager(device)
        return device, manager, FlashGeckoStorage(device, manager)

    def test_pages_land_on_validity_blocks(self, setup):
        device, manager, storage = setup
        address = storage.allocate()
        storage.write(address, GeckoPagePayload(1, 0, 0, True, ()),
                      {"gecko_run_id": 1})
        assert manager.block_type(address.block) is BlockType.VALIDITY

    def test_io_charged_to_validity_purpose(self, setup):
        device, _manager, storage = setup
        address = storage.allocate()
        storage.write(address, GeckoPagePayload(1, 0, 0, True, ()))
        storage.read(address)
        assert device.stats.total(IOKind.PAGE_WRITE, IOPurpose.VALIDITY) == 1
        assert device.stats.total(IOKind.PAGE_READ, IOPurpose.VALIDITY) == 1

    def test_invalidate_marks_metadata_page(self, setup):
        _device, manager, storage = setup
        address = storage.allocate()
        storage.write(address, GeckoPagePayload(1, 0, 0, True, ()))
        storage.invalidate(address)
        assert manager.metadata_invalid_count(address.block) == 1

    def test_spare_payload_is_persisted(self, setup):
        device, _manager, storage = setup
        address = storage.allocate()
        storage.write(address, GeckoPagePayload(7, 2, 0, True, ()),
                      {"gecko_run_id": 7, "gecko_level": 2})
        spare = device.peek(address).spare
        assert spare.payload["gecko_run_id"] == 7
        assert spare.payload["gecko_level"] == 2


class TestRunPageMigration:
    def test_migrate_run_page_keeps_answers_identical(self):
        gecko = make_gecko()
        for block in range(120):
            gecko.record_invalid(block, block % 8)
        run = gecko.runs.all_runs()[-1]
        old_location = run.pages[0].location
        expected = {block: gecko.gc_query(block) for block in range(0, 120, 7)}
        new_location = gecko.migrate_run_page(old_location)
        assert new_location is not None and new_location != old_location
        for block, offsets in expected.items():
            assert gecko.gc_query(block) == offsets

    def test_migrating_unknown_page_is_a_noop(self):
        gecko = make_gecko()
        gecko.record_invalid(1, 1)
        gecko.flush_buffer()
        from repro.flash.address import PhysicalAddress
        assert gecko.migrate_run_page(PhysicalAddress(99, 99)) is None


class TestRestoreRuns:
    def test_restore_runs_resumes_run_id_allocation(self):
        source = make_gecko()
        for block in range(200):
            source.record_invalid(block, 0)
        runs = source.runs.all_runs()
        target = make_gecko(storage=source.storage)
        target.restore_runs(runs)
        assert target.num_runs == len(runs)
        assert target._next_run_id > max(run.run_id for run in runs)
        # New flushes must not clash with recovered run ids.
        for block in range(50):
            target.record_invalid(block, 1)
        target.flush_buffer()
        ids = target.runs.run_ids()
        assert len(ids) == len(set(ids))

    def test_smallest_run_creation_tracks_latest_flush(self):
        gecko = make_gecko()
        assert gecko.smallest_run_creation() is None
        gecko.record_invalid(1, 1)
        gecko.flush_buffer()
        first = gecko.smallest_run_creation()
        gecko.record_invalid(2, 2)
        gecko.flush_buffer()
        assert gecko.smallest_run_creation() >= first
