"""Property-based crash-anywhere tests (satellite of the scenario engine).

For every FTL with a real recovery path (which, with the recovery adapters,
is every FTL in the registry): crash after an arbitrary operation prefix —
including mid-GC and mid-merge failure points — recover, and check

* every logical page reads back the payload of its last completed write
  (the full-scan and GeckoRec paths recover even unsynchronized writes; the
  battery path flushes them at failure time);
* the RAM model is unchanged by the crash cycle (``ram_bytes`` is a
  property of the configured layout, not of luck);
* the IOStats ledger stays coherent: host counters are untouched by
  recovery, and recovery-purpose IO appears only when a recovery ran.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SimulationSession
from repro.engine import CrashPlan, SweepTask, execute_task
from repro.flash.config import simulation_configuration
from repro.flash.stats import IOKind, IOPurpose

ALL_FTLS = ["GeckoFTL", "DFTL", "LazyFTL", "IB-FTL", "uFTL"]


def drive(session, count, seed, shadow):
    rng = random.Random(seed)
    logical_pages = session.config.logical_pages
    for i in range(count):
        logical = rng.randrange(logical_pages)
        if rng.random() < 0.15:
            assert session.read(logical) == shadow.get(logical)
        else:
            payload = ("p", logical, i, seed)
            session.write(logical, payload)
            shadow[logical] = payload


@pytest.mark.parametrize("ftl", ALL_FTLS)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), prefix=st.integers(0, 500))
def test_crash_after_any_prefix_recovers_last_written_data(ftl, seed, prefix):
    config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                      page_size=256)
    session = SimulationSession(ftl, device=config,
                                ftl_kwargs={"cache_capacity": 64})
    session.warmup()
    shadow = {logical: ("init", logical)
              for logical in range(config.logical_pages)}
    drive(session, prefix, seed, shadow)

    stats_before = session.stats.snapshot()
    ram_before = session.ram_breakdown()
    session.crash()
    report = session.recover()
    stats_after = session.stats.snapshot()

    # Host counters are untouched by the crash cycle.
    assert stats_after.host_writes == stats_before.host_writes
    assert stats_after.host_reads == stats_before.host_reads
    # A battery flush spends no spare reads; scan recoveries only add IO.
    diff = stats_after.diff(stats_before)
    assert diff.total(IOKind.SPARE_READ) == report.total_spare_reads
    assert diff.total(IOKind.PAGE_READ) == report.total_page_reads
    assert diff.total(IOKind.PAGE_WRITE) == report.total_page_writes
    if report.total_spare_reads:
        assert diff.total(IOKind.SPARE_READ,
                          IOPurpose.RECOVERY) == report.total_spare_reads

    # The RAM model survives the crash cycle: recovery rebuilds the same
    # resident structures the paper's Table 2 accounting describes.
    assert session.ram_breakdown() == ram_before

    # Every logical page reads back its last completed write.
    mismatches = [logical for logical, payload in shadow.items()
                  if session.read(logical) != payload]
    assert mismatches == []

    # And the FTL keeps working: more writes, then verify again.
    drive(session, 150, seed + 1, shadow)
    mismatches = [logical for logical, payload in shadow.items()
                  if session.read(logical) != payload]
    assert mismatches == []
    session.close()


@pytest.mark.parametrize("ftl", ALL_FTLS)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), after=st.integers(0, 700),
       phase=st.sampled_from(["ops", "gc", "merge"]))
def test_crash_rows_hold_invariants_at_any_point(ftl, seed, after, phase):
    """The engine path: crash rows are well-formed wherever the crash lands."""
    task = SweepTask(
        ftl=ftl, workload="UniformRandomWrites",
        device={"num_blocks": 64, "pages_per_block": 8, "page_size": 256},
        cache_capacity=64, seed=seed, write_operations=700,
        interval_writes=350,
        crash=CrashPlan(after_ops=after, phase=phase).to_dict())
    row = execute_task(task)
    recovery = row["recovery"]
    assert recovery is not None
    assert recovery["total_duration_us"] >= 0
    assert recovery["total_spare_reads"] >= 0
    steps = {step["name"] for step in recovery["steps"]}
    assert steps  # every adapter reports at least one step
    assert row["crash"]["ops_completed"] + row["crash"]["post_ops"] \
        == row["operations_executed"]
    assert row["ram_bytes"] == sum(row["ram_breakdown"].values())
    # Deterministic: the same task re-executed yields the same recovery.
    again = execute_task(task)
    assert again["recovery"] == recovery
    assert again["crash"] == row["crash"]
