"""Unit tests for the Logarithmic Gecko data structure (standalone)."""

import pytest

from repro.core.gecko_entry import EntryLayout
from repro.core.logarithmic_gecko import GeckoConfig, LogarithmicGecko
from repro.core.storage import InMemoryGeckoStorage


def make_gecko(size_ratio=2, pages_per_block=8, page_size=128,
               partition_factor=1, multiway=False):
    layout = EntryLayout(pages_per_block=pages_per_block, page_size=page_size,
                         partition_factor=partition_factor)
    config = GeckoConfig(size_ratio=size_ratio, layout=layout,
                         multiway_merge=multiway)
    return LogarithmicGecko(config, storage=InMemoryGeckoStorage())


class TestConfiguration:
    def test_size_ratio_below_two_is_rejected(self):
        layout = EntryLayout(pages_per_block=8, page_size=128)
        with pytest.raises(ValueError):
            GeckoConfig(size_ratio=1, layout=layout)

    def test_default_storage_is_in_memory(self):
        layout = EntryLayout(pages_per_block=8, page_size=128)
        gecko = LogarithmicGecko(GeckoConfig(size_ratio=2, layout=layout))
        assert isinstance(gecko.storage, InMemoryGeckoStorage)


class TestUpdatesAndQueries:
    def test_buffered_update_is_visible_to_queries(self):
        gecko = make_gecko()
        gecko.record_invalid(7, 3)
        assert gecko.gc_query(7) == {3}

    def test_query_of_unknown_block_is_empty(self):
        assert make_gecko().gc_query(42) == set()

    def test_updates_accumulate_per_block(self):
        gecko = make_gecko()
        gecko.record_invalid(7, 3)
        gecko.record_invalid(7, 5)
        assert gecko.gc_query(7) == {3, 5}

    def test_flushed_updates_remain_visible(self):
        gecko = make_gecko()
        gecko.record_invalid(7, 3)
        gecko.flush_buffer()
        assert gecko.gc_query(7) == {3}

    def test_updates_survive_many_flushes_and_merges(self):
        gecko = make_gecko()
        for block in range(200):
            gecko.record_invalid(block, block % 8)
        for block in range(200):
            assert block % 8 in gecko.gc_query(block)

    def test_erase_obsoletes_older_records(self):
        gecko = make_gecko()
        gecko.record_invalid(7, 3)
        gecko.flush_buffer()
        gecko.record_erase(7)
        assert gecko.gc_query(7) == set()

    def test_records_after_erase_are_reported(self):
        gecko = make_gecko()
        gecko.record_erase(7)
        gecko.record_invalid(7, 2)
        assert gecko.gc_query(7) == {2}

    def test_erase_shadow_survives_merges(self):
        gecko = make_gecko()
        for block in range(60):
            gecko.record_invalid(block, 1)
        gecko.record_erase(5)
        for block in range(60, 120):
            gecko.record_invalid(block, 1)
        assert gecko.gc_query(5) == set()
        assert gecko.gc_query(50) == {1}

    def test_counters_track_operations(self):
        gecko = make_gecko()
        gecko.record_invalid(1, 1)
        gecko.record_erase(2)
        gecko.gc_query(1)
        assert gecko.updates == 1
        assert gecko.erase_records == 1
        assert gecko.gc_queries == 1


class TestPartitionedEntries:
    def test_partitioned_queries_cover_all_slices(self):
        gecko = make_gecko(partition_factor=4)
        gecko.record_invalid(3, 0)
        gecko.record_invalid(3, 7)
        assert gecko.gc_query(3) == {0, 7}

    def test_partitioned_flush_and_merge(self):
        gecko = make_gecko(partition_factor=4)
        for block in range(100):
            gecko.record_invalid(block, block % 8)
        for block in range(100):
            assert block % 8 in gecko.gc_query(block)

    def test_partitioned_erase(self):
        gecko = make_gecko(partition_factor=2)
        gecko.record_invalid(9, 0)
        gecko.record_invalid(9, 7)
        gecko.flush_buffer()
        gecko.record_erase(9)
        assert gecko.gc_query(9) == set()


class TestMergeBehaviour:
    def test_buffer_flush_creates_runs(self):
        gecko = make_gecko()
        capacity = gecko.buffer.capacity
        for block in range(capacity):
            gecko.record_invalid(block, 0)
        assert gecko.num_runs >= 1

    def test_two_runs_at_a_level_are_merged(self):
        gecko = make_gecko()
        capacity = gecko.buffer.capacity
        # Two buffer flushes with identical key sets collapse into one run.
        for _round in range(2):
            for block in range(capacity):
                gecko.record_invalid(block, _round)
            gecko.flush_buffer()
        assert gecko.merge_operations >= 1
        levels = gecko.runs.levels()
        for level in levels:
            assert len(gecko.runs.runs_at_level(level)) <= 1

    def test_level_grows_logarithmically(self):
        gecko = make_gecko()
        for block in range(400):
            gecko.record_invalid(block % 300, 0)
        assert gecko.num_levels <= 6

    def test_obsolete_runs_are_invalidated_in_storage(self):
        gecko = make_gecko()
        for block in range(200):
            gecko.record_invalid(block, 0)
        storage = gecko.storage
        assert storage.live_pages == gecko.total_flash_pages()

    def test_space_amplification_is_bounded(self):
        gecko = make_gecko()
        for round_number in range(6):
            for block in range(150):
                gecko.record_invalid(block, round_number % 8)
        gecko.flush_buffer()
        minimal_pages = -(-150 // gecko.layout.entries_per_page)
        assert gecko.total_flash_pages() <= 3 * minimal_pages

    def test_multiway_merge_produces_same_answers(self):
        two_way = make_gecko(multiway=False)
        multi = make_gecko(multiway=True)
        for block in range(300):
            two_way.record_invalid(block % 200, block % 8)
            multi.record_invalid(block % 200, block % 8)
        for block in range(200):
            assert two_way.gc_query(block) == multi.gc_query(block)

    def test_multiway_merge_writes_no_more_than_two_way(self):
        two_way = make_gecko(multiway=False)
        multi = make_gecko(multiway=True)
        for block in range(500):
            two_way.record_invalid(block % 300, block % 8)
            multi.record_invalid(block % 300, block % 8)
        assert multi.storage.writes <= two_way.storage.writes

    def test_higher_size_ratio_reduces_levels(self):
        small_t = make_gecko(size_ratio=2)
        large_t = make_gecko(size_ratio=8)
        for block in range(600):
            small_t.record_invalid(block % 400, 0)
            large_t.record_invalid(block % 400, 0)
        assert large_t.num_levels <= small_t.num_levels


class TestCostBehaviour:
    def test_updates_are_cheaper_than_flash_pvb(self):
        """V buffered updates must cost far fewer than V writes (Table 1)."""
        gecko = make_gecko()
        updates = 2000
        for i in range(updates):
            gecko.record_invalid(i % 500, i % 8)
        assert gecko.storage.writes < updates / 2

    def test_gc_query_reads_at_most_one_page_per_run(self):
        gecko = make_gecko()
        for block in range(300):
            gecko.record_invalid(block, 0)
        reads_before = gecko.storage.reads
        gecko.gc_query(150)
        reads = gecko.storage.reads - reads_before
        assert reads <= 2 * gecko.num_runs

    def test_ram_bytes_counts_buffer_and_directories(self):
        gecko = make_gecko()
        for block in range(200):
            gecko.record_invalid(block, 0)
        assert gecko.ram_bytes() >= gecko.buffer.ram_bytes
        assert gecko.ram_bytes() == (gecko.buffer.ram_bytes
                                     + gecko.runs.ram_bytes())


class TestReconstruction:
    def test_reconstruct_bitmaps_matches_queries(self):
        gecko = make_gecko()
        import random
        rng = random.Random(3)
        expected = {}
        for _ in range(500):
            block = rng.randrange(100)
            offset = rng.randrange(8)
            gecko.record_invalid(block, offset)
            expected.setdefault(block, set()).add(offset)
        bitmaps = gecko.reconstruct_bitmaps()
        for block, offsets in expected.items():
            assert bitmaps.get(block, set()) == offsets
            assert gecko.gc_query(block) == offsets

    def test_reconstruct_respects_erases(self):
        gecko = make_gecko()
        gecko.record_invalid(4, 2)
        gecko.flush_buffer()
        gecko.record_erase(4)
        assert gecko.reconstruct_bitmaps().get(4, set()) == set()

    def test_reconstruct_does_not_consume_the_buffer(self):
        gecko = make_gecko()
        gecko.record_invalid(4, 2)
        gecko.reconstruct_bitmaps()
        assert gecko.gc_query(4) == {2}
