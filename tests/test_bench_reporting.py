"""Tests for bench.reporting — previously untested formatting helpers."""

import pytest

from repro.bench.reporting import (format_bytes, format_seconds, format_table,
                                   print_report)


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(no data)"
        assert format_table([], title="T") == "T\n(no data)"

    def test_column_order_follows_first_row(self):
        rows = [{"b": 1, "a": 2}, {"a": 3, "b": 4}]
        table = format_table(rows)
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_explicit_columns_select_and_order(self):
        rows = [{"ftl": "GeckoFTL", "wa_total": 2.5, "secret": "x"}]
        table = format_table(rows, columns=["wa_total", "ftl"])
        header = table.splitlines()[0]
        assert "secret" not in table
        assert header.index("wa_total") < header.index("ftl")

    def test_row_order_is_preserved(self):
        rows = [{"ftl": name} for name in ("DFTL", "GeckoFTL", "uFTL")]
        lines = format_table(rows).splitlines()[2:]
        assert [line.split("|")[0].strip() for line in lines] == \
               ["DFTL", "GeckoFTL", "uFTL"]

    def test_columns_are_padded_to_widest_cell(self):
        rows = [{"ftl": "IB-FTL"}, {"ftl": "a-very-long-ftl-name"}]
        lines = format_table(rows).splitlines()
        assert len({len(line) for line in lines}) == 1  # all equal width

    def test_write_amplification_breakdown_columns(self):
        # The shape SessionSnapshot.row()/sweep rows feed into reports:
        # wa_total plus one wa_<purpose> column per IO purpose.
        rows = [
            {"ftl": "GeckoFTL", "wa_total": 2.684, "wa_user": 1.0,
             "wa_gc": 1.319, "wa_translation": 0.288, "wa_validity": 0.077},
            {"ftl": "uFTL", "wa_total": 3.98, "wa_user": 1.0,
             "wa_gc": 1.394, "wa_translation": 0.337, "wa_validity": 1.25},
        ]
        table = format_table(rows, title="Figure 13 (bottom)")
        lines = table.splitlines()
        assert lines[0] == "Figure 13 (bottom)"
        header = lines[1]
        for column in ("wa_total", "wa_user", "wa_gc", "wa_translation",
                       "wa_validity"):
            assert column in header
        # Values are rendered with the 4-significant-digit float format.
        assert "2.684" in lines[3]
        assert "0.077" in lines[3]
        assert "1.25" in lines[4]

    def test_float_formatting_and_none_cells(self):
        rows = [{"a": 0.123456, "b": None, "c": 7}]
        body = format_table(rows).splitlines()[-1]
        assert "0.1235" in body  # 4 significant digits
        assert "None" not in body  # None renders as empty
        assert "7" in body

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        body = format_table(rows).splitlines()[-1]
        assert body.split("|")[1].strip() == ""


class TestFormatBytes:
    @pytest.mark.parametrize("value,expected", [
        (0, "0.00 B"),
        (512, "512.00 B"),
        (2048, "2.00 KB"),
        (64 * 2**20, "64.00 MB"),
        (2 * 2**30, "2.00 GB"),
        (3 * 2**40, "3.00 TB"),
        (5 * 2**50, "5120.00 TB"),  # saturates at TB
    ])
    def test_units(self, value, expected):
        assert format_bytes(value) == expected


class TestFormatSeconds:
    @pytest.mark.parametrize("value,expected", [
        (5e-6, "5.0 us"),
        (2.5e-3, "2.5 ms"),
        (1.5, "1.50 s"),
        (119.0, "119.00 s"),
        (600.0, "10.0 min"),
    ])
    def test_units(self, value, expected):
        assert format_seconds(value) == expected


class TestPrintReport:
    def test_prints_banner_title_and_table(self, capsys):
        print_report("My title", [{"ftl": "GeckoFTL", "wa_total": 2.5}])
        output = capsys.readouterr().out
        lines = [line for line in output.splitlines() if line]
        assert lines[0] == "=" * 20
        assert lines[1] == "My title"
        assert lines[2] == "=" * 20
        assert "GeckoFTL" in output
        assert "wa_total" in output

    def test_banner_stretches_with_long_titles(self, capsys):
        title = "A title longer than twenty characters, certainly"
        print_report(title, [])
        output = capsys.readouterr().out
        assert "=" * len(title) in output

    def test_respects_explicit_columns(self, capsys):
        print_report("T", [{"a": 1, "b": 2}], columns=["b"])
        output = capsys.readouterr().out
        assert "b" in output
        assert "a" not in output.replace("=", "").split("T")[1]
