"""Tests for declarative sweep plans and their expansion."""

import json

import pytest

from repro.engine.plan import (SweepPlan, SweepTask, build_device_config,
                               device_dict)
from repro.flash.config import simulation_configuration

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


class TestDeviceDict:
    def test_default_matches_simulation_configuration(self):
        base = simulation_configuration()
        assert device_dict() == {
            "num_blocks": base.num_blocks,
            "pages_per_block": base.pages_per_block,
            "page_size": base.page_size,
            "logical_ratio": base.logical_ratio,
        }

    def test_accepts_config_dict_and_overrides(self):
        config = simulation_configuration(**TINY)
        assert device_dict(config) == device_dict(dict(TINY))
        assert device_dict(config, logical_ratio=0.5)["logical_ratio"] == 0.5

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown device field"):
            device_dict({"blocks": 64})
        with pytest.raises(ValueError, match="unknown device field"):
            device_dict(page_count=7)

    def test_round_trips_through_build_device_config(self):
        config = build_device_config(device_dict(dict(TINY)))
        assert config.num_blocks == 64
        assert config.pages_per_block == 8
        assert config.page_size == 256


class TestSweepTask:
    def task(self, **overrides):
        defaults = dict(ftl="GeckoFTL", workload="UniformRandomWrites",
                        device=dict(TINY), cache_capacity=64, seed=7,
                        write_operations=500, interval_writes=250)
        defaults.update(overrides)
        return SweepTask(**defaults)

    def test_specs_are_validated_and_normalized(self):
        task = self.task(ftl="geckoftl", workload="uniform")
        assert task.ftl == "GeckoFTL"
        assert task.workload == "UniformRandomWrites"
        with pytest.raises(ValueError, match="unknown FTL"):
            self.task(ftl="NopeFTL")
        with pytest.raises(ValueError, match="unknown workload"):
            self.task(workload="NopeWrites")

    def test_key_is_stable_and_position_independent(self):
        assert self.task().key() == self.task(index=17).key()
        assert self.task().key() != self.task(seed=8).key()
        assert self.task().key() != self.task(cache_capacity=128).key()

    def test_serialization_round_trip(self):
        task = self.task(ftl="GeckoFTL(cache_capacity=32)")
        clone = SweepTask.from_dict(json.loads(json.dumps(task.to_dict())))
        assert clone == task
        assert clone.key() == task.key()
        assert clone.derived_seed == task.derived_seed

    def test_derived_seed_ignores_ftl_and_cache(self):
        # Same cell coordinates, different FTL/cache -> identical stream.
        base = self.task()
        assert self.task(ftl="DFTL").derived_seed == base.derived_seed
        assert self.task(cache_capacity=128).derived_seed == base.derived_seed

    def test_derived_seed_varies_with_workload_device_and_seed(self):
        base = self.task()
        assert self.task(seed=8).derived_seed != base.derived_seed
        assert (self.task(workload="SequentialWrites").derived_seed
                != base.derived_seed)
        other_device = dict(TINY, num_blocks=96)
        assert (self.task(device=other_device).derived_seed
                != base.derived_seed)


class TestSweepPlan:
    def test_expansion_order_and_count(self):
        plan = SweepPlan(ftls=["GeckoFTL", "DFTL"],
                         workloads=["UniformRandomWrites"],
                         devices=[dict(TINY)],
                         cache_capacities=[32, 64],
                         seeds=[1, 2],
                         write_operations=500, interval_writes=250)
        tasks = plan.tasks()
        assert len(plan) == len(tasks) == 8
        assert [task.index for task in tasks] == list(range(8))
        # Cartesian product in declaration order: ftl is the slowest axis,
        # seed the fastest.
        assert [t.ftl for t in tasks[:4]] == ["GeckoFTL"] * 4
        assert [t.ftl for t in tasks[4:]] == ["DFTL"] * 4
        assert [t.seed for t in tasks[:4]] == [1, 2, 1, 2]
        assert [t.cache_capacity for t in tasks[:4]] == [32, 32, 64, 64]

    def test_expansion_is_deterministic(self):
        plan = SweepPlan(ftls=["GeckoFTL", "DFTL"], devices=[dict(TINY)],
                         cache_capacities=[32, 64], seeds=[1, 2],
                         write_operations=500, interval_writes=250)
        assert [t.key() for t in plan.tasks()] == \
               [t.key() for t in plan.tasks()]

    def test_rejects_empty_axes_and_bad_volumes(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepPlan(ftls=[])
        with pytest.raises(ValueError, match="write_operations"):
            SweepPlan(write_operations=0)
        with pytest.raises(ValueError, match="fill_fraction"):
            SweepPlan(fill_fraction=1.5)

    def test_dict_round_trip(self):
        plan = SweepPlan(ftls=["GeckoFTL"], devices=[dict(TINY)],
                         cache_capacities=[64], seeds=[3],
                         write_operations=500, interval_writes=250)
        clone = SweepPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown sweep-plan key"):
            SweepPlan.from_dict({"ftls": ["GeckoFTL"], "cheese": 1})


class TestGridShorthand:
    def test_basic_axes(self):
        plan = SweepPlan.from_grid("ftl=GeckoFTL,DFTL cache=32,64 seed=1,2",
                                   devices=[dict(TINY)],
                                   write_operations=500, interval_writes=250)
        assert plan.ftls == ("GeckoFTL", "DFTL")
        assert plan.cache_capacities == (32, 64)
        assert plan.seeds == (1, 2)
        assert len(plan) == 8

    def test_spec_arguments_survive_comma_splitting(self):
        plan = SweepPlan.from_grid(
            "ftl=GeckoFTL(cache_capacity=32,multiway_merge=True),DFTL",
            devices=[dict(TINY)], write_operations=500, interval_writes=250)
        assert len(plan.ftls) == 2
        assert plan.ftls[0].startswith("GeckoFTL(")
        assert plan.ftls[1] == "DFTL"

    def test_spec_arguments_survive_space_splitting(self):
        # Spec strings as the library renders them use ", " separators;
        # depth-0 whitespace splitting must leave them intact.
        plan = SweepPlan.from_grid(
            "ftl=GeckoFTL(cache_capacity=32, multiway_merge=True),DFTL "
            "seed=1,2",
            devices=[dict(TINY)], write_operations=500, interval_writes=250)
        assert len(plan.ftls) == 2
        assert "multiway_merge" in plan.ftls[0]
        assert plan.seeds == (1, 2)

    def test_device_axes_build_device_grid(self):
        plan = SweepPlan.from_grid("blocks=64,96 ratio=0.5,0.7",
                                   write_operations=500, interval_writes=250)
        assert len(plan.devices) == 4
        assert {d["num_blocks"] for d in plan.devices} == {64, 96}
        assert {d["logical_ratio"] for d in plan.devices} == {0.5, 0.7}

    def test_plural_axis_spellings_accepted(self):
        plan = SweepPlan.from_grid("ftls=GeckoFTL seeds=1,2",
                                   devices=[dict(TINY)],
                                   write_operations=500, interval_writes=250)
        assert plan.seeds == (1, 2)

    def test_workload_axis(self):
        plan = SweepPlan.from_grid(
            "workload=UniformRandomWrites,ZipfianWrites(theta=0.9)",
            devices=[dict(TINY)], write_operations=500, interval_writes=250)
        assert plan.workloads == ("UniformRandomWrites",
                                  "ZipfianWrites(theta=0.9)")

    def test_malformed_groups_rejected(self):
        with pytest.raises(ValueError, match="malformed grid group"):
            SweepPlan.from_grid("ftl")
        with pytest.raises(ValueError, match="unknown grid axis"):
            SweepPlan.from_grid("cheese=1")
        with pytest.raises(ValueError, match="given twice"):
            SweepPlan.from_grid("seed=1 seed=2")
