"""Session-level timing tests: wiring, determinism, zero-overhead guard."""

import pytest

from repro import (FlashDevice, SimulationSession, TimedFlashDevice,
                   TimingModel, TimingSpec, UniformRandomWrites,
                   simulation_configuration)

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


def tiny_config():
    return simulation_configuration(**TINY)


def run_timed(ftl="GeckoFTL", timing="slc", ops=1500, seed=7):
    with SimulationSession(ftl, device=tiny_config(), timing=timing,
                           ftl_kwargs={"cache_capacity": 48}) as session:
        session.warmup()
        session.run(UniformRandomWrites(session.config.logical_pages,
                                        seed=seed), ops)
        return session.latency_summary(), session.snapshot()


class TestZeroOverheadWhenDisabled:
    """Timing off must mean the *exact* pre-existing fast paths."""

    def test_plain_session_uses_plain_device(self):
        with SimulationSession("GeckoFTL", device=tiny_config()) as session:
            assert type(session.device) is FlashDevice
            assert session.timing is None
            assert session.ftl.timing is None
            assert getattr(session.device, "timing", None) is None

    def test_plain_device_has_no_timing_slot(self):
        # FlashDevice uses __slots__, so no per-instance shadowing is even
        # possible: a plain device physically cannot carry a timing hook.
        assert "timing" not in FlashDevice.__slots__
        with pytest.raises(AttributeError):
            FlashDevice(tiny_config()).timing = object()

    def test_timed_methods_are_overrides_not_patches(self):
        # The plain class's methods are untouched; the timed subclass
        # carries its own. This is the structural zero-overhead guarantee.
        for name in ("read_page", "read_page_data", "read_page_record",
                     "write_page_tagged", "read_spare", "read_spare_logical",
                     "erase_block"):
            assert (getattr(FlashDevice, name)
                    is not getattr(TimedFlashDevice, name))
        # write_page and peek intentionally delegate / stay uncharged.
        assert "write_page" not in TimedFlashDevice.__dict__
        assert "peek" not in TimedFlashDevice.__dict__

    def test_plain_row_has_no_latency_columns(self):
        with SimulationSession("GeckoFTL", device=tiny_config()) as session:
            session.warmup()
            session.run(
                UniformRandomWrites(session.config.logical_pages, seed=1),
                300)
            assert session.latency_summary() is None
            row = session.snapshot().row()
            for column in ("throughput_ops_s", "p50_us", "p99_us",
                           "p999_us"):
                assert column not in row

    def test_timed_and_plain_sessions_do_identical_io(self):
        # The timed device observes the IO stream without altering it.
        def stats_of(timing):
            with SimulationSession(
                    "GeckoFTL", device=tiny_config(), timing=timing,
                    ftl_kwargs={"cache_capacity": 48}) as session:
                session.warmup()
                session.run(UniformRandomWrites(
                    session.config.logical_pages, seed=3), 800)
                return session.stats.snapshot().breakdown()

        assert stats_of(None) == stats_of("slc")


class TestSessionWiring:
    def test_timing_accepts_preset_spec_model(self):
        spec = TimingSpec.preset("mlc")
        for timing in ("mlc", spec, spec.to_dict(), TimingModel(spec)):
            with SimulationSession("DFTL", device=tiny_config(),
                                   timing=timing) as session:
                assert isinstance(session.device, TimedFlashDevice)
                assert session.timing.spec == spec
                assert session.ftl.timing is session.timing

    def test_ready_timed_device_is_adopted(self):
        device = TimedFlashDevice(tiny_config(), timing="slc")
        with SimulationSession("DFTL", device=device) as session:
            assert session.timing is device.timing

    def test_plain_device_plus_timing_rejected(self):
        with pytest.raises(ValueError, match="timing="):
            SimulationSession("DFTL", device=FlashDevice(tiny_config()),
                              timing="slc")

    def test_latency_summary_shape(self):
        summary, snapshot = run_timed(ops=800)
        assert summary["requests"] == 800
        assert summary["throughput_ops_s"] > 0
        assert (summary["p50_us"] <= summary["p99_us"]
                <= summary["p999_us"] <= summary["max_us"])
        assert summary["kinds"]["write"]["count"] == 800
        row = snapshot.row()
        assert row["p99_us"] == summary["p99_us"]
        assert row["throughput_ops_s"] == summary["throughput_ops_s"]

    def test_warmup_resets_capture_but_not_clock(self):
        with SimulationSession("GeckoFTL", device=tiny_config(),
                               timing="paper") as session:
            session.warmup()
            assert session.timing.requests == 0
            assert session.timing.sketch.count == 0
            assert session.timing.now > 0.0  # fill time stays on the clock
            assert session.timing.virtual_seconds == 0.0

    def test_identical_seeds_produce_identical_sketches(self):
        one, _ = run_timed(seed=11)
        two, _ = run_timed(seed=11)
        other, _ = run_timed(seed=12)
        assert one == two
        assert one != other

    def test_mixed_workload_reports_per_kind_sketches(self):
        with SimulationSession("DFTL", device=tiny_config(),
                               timing="slc") as session:
            session.warmup()
            from repro import MixedReadWrite
            session.run(MixedReadWrite(
                UniformRandomWrites(session.config.logical_pages, seed=5),
                read_fraction=0.4, seed=5), 1000)
            summary = session.latency_summary()
            assert set(summary["kinds"]) >= {"read", "write"}
            counts = sum(k["count"] for k in summary["kinds"].values())
            assert counts == summary["requests"] == 1000


class TestCrashRecoveryTiming:
    def test_recovery_reports_virtual_time_without_clock_corruption(self):
        with SimulationSession("GeckoFTL", device=tiny_config(),
                               timing="paper",
                               ftl_kwargs={"cache_capacity": 48}) as session:
            session.warmup()
            session.run(UniformRandomWrites(
                session.config.logical_pages, seed=3), 600)
            requests_before = session.timing.requests
            clock_before = session.timing.now
            session.crash()
            assert not session.timing.in_request
            report = session.recover()
            assert report is not None
            assert session.recovery_virtual_us is not None
            assert session.recovery_virtual_us >= 0.0
            assert session.timing.now >= clock_before
            # The crash/recovery cycle records no phantom host requests.
            assert session.timing.requests == requests_before
            # And the session keeps working (clock strictly monotone).
            session.run(UniformRandomWrites(
                session.config.logical_pages, seed=4), 100)
            assert session.timing.requests == requests_before + 100

    def test_crash_is_deterministic_under_timing(self):
        def run():
            with SimulationSession("LazyFTL", device=tiny_config(),
                                   timing="slc",
                                   ftl_kwargs={"cache_capacity": 48}
                                   ) as session:
                session.warmup()
                session.run(UniformRandomWrites(
                    session.config.logical_pages, seed=9), 400)
                session.crash()
                session.recover()
                return (session.recovery_virtual_us, session.timing.now,
                        session.timing.sketch.to_dict())

        assert run() == run()
