"""Property-based tests (hypothesis) on the core data structures and invariants.

These tests check the invariants the paper's correctness rests on:

* Logarithmic Gecko answers GC queries exactly like an oracle bitmap would,
  for any interleaving of invalidations and erases, under any tuning.
* Gecko entry merging is lossless and order-respecting.
* The mapping cache never exceeds capacity and its dirty count is exact.
* The flash device never accepts writes that violate NAND constraints.
* An FTL driven by an arbitrary write sequence always reads back the latest
  version of every logical page.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.gecko_entry import EntryLayout, GeckoEntry, merge_entry_lists
from repro.core.logarithmic_gecko import GeckoConfig, LogarithmicGecko
from repro.core.storage import InMemoryGeckoStorage
from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.errors import FlashError
from repro.ftl.mapping_cache import CachedMapping, MappingCache
from repro.core.gecko_ftl import GeckoFTL
from repro.ftl.dftl import DFTL


# ----------------------------------------------------------------------
# Logarithmic Gecko vs an oracle bitmap
# ----------------------------------------------------------------------
gecko_ops = st.lists(
    st.one_of(
        st.tuples(st.just("invalid"), st.integers(0, 63), st.integers(0, 7)),
        st.tuples(st.just("erase"), st.integers(0, 63), st.just(0)),
    ),
    min_size=1, max_size=300)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=gecko_ops,
       size_ratio=st.sampled_from([2, 3, 4]),
       partition_factor=st.sampled_from([1, 2, 4]))
def test_gecko_matches_oracle_bitmap(operations, size_ratio, partition_factor):
    layout = EntryLayout(pages_per_block=8, page_size=64,
                         partition_factor=partition_factor)
    gecko = LogarithmicGecko(GeckoConfig(size_ratio=size_ratio, layout=layout),
                             storage=InMemoryGeckoStorage())
    oracle = {}
    for kind, block, offset in operations:
        if kind == "invalid":
            gecko.record_invalid(block, offset)
            oracle.setdefault(block, set()).add(offset)
        else:
            gecko.record_erase(block)
            oracle[block] = set()
    for block in {block for _kind, block, _offset in operations}:
        assert gecko.gc_query(block) == oracle.get(block, set())


@settings(max_examples=40, deadline=None)
@given(operations=gecko_ops)
def test_gecko_space_is_bounded(operations):
    """Valid runs never occupy more than ~2x the minimal space (Section 3.2)."""
    layout = EntryLayout(pages_per_block=8, page_size=64)
    gecko = LogarithmicGecko(GeckoConfig(size_ratio=2, layout=layout),
                             storage=InMemoryGeckoStorage())
    distinct = set()
    for kind, block, offset in operations:
        if kind == "invalid":
            gecko.record_invalid(block, offset)
        else:
            gecko.record_erase(block)
        distinct.add(block)
    minimal_pages = -(-len(distinct) // layout.entries_per_page)
    assert gecko.total_flash_pages() <= 2 * minimal_pages + 2


# ----------------------------------------------------------------------
# Entry merging
# ----------------------------------------------------------------------
entries_strategy = st.lists(
    st.builds(GeckoEntry,
              block_id=st.integers(0, 20),
              sub_key=st.just(0),
              bitmap=st.integers(0, 255),
              erase_flag=st.booleans()),
    max_size=30)


@settings(max_examples=100, deadline=None)
@given(newer=entries_strategy, older=entries_strategy)
def test_merge_entry_lists_is_sorted_and_deduplicated(newer, older):
    def dedupe(entries):
        by_key = {}
        for entry in sorted(entries, key=lambda e: e.sort_key):
            if entry.sort_key not in by_key:
                by_key[entry.sort_key] = entry
        return sorted(by_key.values(), key=lambda e: e.sort_key)

    merged = merge_entry_lists(dedupe(newer), dedupe(older))
    keys = [entry.sort_key for entry in merged]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


@settings(max_examples=100, deadline=None)
@given(newer=entries_strategy, older=entries_strategy)
def test_merge_preserves_newer_information(newer, older):
    """Every bit set in a newer entry survives the merge."""
    def dedupe(entries):
        by_key = {}
        for entry in sorted(entries, key=lambda e: e.sort_key):
            by_key.setdefault(entry.sort_key, entry)
        return sorted(by_key.values(), key=lambda e: e.sort_key)

    newer, older = dedupe(newer), dedupe(older)
    merged = {entry.sort_key: entry for entry in merge_entry_lists(newer, older)}
    for entry in newer:
        surviving = merged[entry.sort_key]
        assert entry.bitmap & surviving.bitmap == entry.bitmap or entry.erase_flag


# ----------------------------------------------------------------------
# Mapping cache
# ----------------------------------------------------------------------
cache_ops = st.lists(
    st.tuples(st.sampled_from(["put", "put_dirty", "get", "remove", "pop"]),
              st.integers(0, 30)),
    max_size=200)


@settings(max_examples=100, deadline=None)
@given(operations=cache_ops)
def test_cache_dirty_count_is_always_exact(operations):
    cache = MappingCache(capacity=8, entries_per_translation_page=4)
    for kind, logical in operations:
        if kind == "put":
            cache.put(CachedMapping(logical, PhysicalAddress(0, 0)))
        elif kind == "put_dirty":
            cache.put(CachedMapping(logical, PhysicalAddress(0, 0), dirty=True))
        elif kind == "get":
            cache.get(logical)
        elif kind == "remove":
            cache.remove(logical)
        elif kind == "pop":
            cache.pop_lru()
        actual_dirty = sum(1 for entry in cache.entries() if entry.dirty)
        assert cache.dirty_count == actual_dirty


@settings(max_examples=50, deadline=None)
@given(logicals=st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_cache_eviction_keeps_most_recent_entries(logicals):
    cache = MappingCache(capacity=8, entries_per_translation_page=4)
    for logical in logicals:
        cache.put(CachedMapping(logical, PhysicalAddress(0, 0)))
        while len(cache) > cache.capacity:
            cache.pop_lru()
    distinct_recent = []
    for logical in reversed(logicals):
        if logical not in distinct_recent:
            distinct_recent.append(logical)
        if len(distinct_recent) == cache.capacity:
            break
    for logical in distinct_recent:
        assert logical in cache


# ----------------------------------------------------------------------
# Flash device constraints
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(operations=st.lists(
    st.tuples(st.sampled_from(["write", "erase"]), st.integers(0, 7),
              st.integers(0, 7)),
    max_size=100))
def test_device_never_silently_corrupts_state(operations):
    """Whatever sequence of raw operations is attempted, the device either
    performs it or raises; written pages always read back what was written."""
    device = FlashDevice(simulation_configuration(num_blocks=8,
                                                  pages_per_block=8,
                                                  page_size=64))
    contents = {}
    for kind, block, page in operations:
        if kind == "write":
            address = PhysicalAddress(block, page)
            try:
                device.write_page(address, (block, page, len(contents)))
                contents[address] = (block, page, len(contents) - 1)
            except FlashError:
                pass
        else:
            try:
                device.erase_block(block)
                contents = {address: value for address, value in contents.items()
                            if address.block != block}
            except FlashError:
                pass
    for address, value in contents.items():
        stored = device.peek(address).data
        assert stored[0] == address.block and stored[1] == address.page


# ----------------------------------------------------------------------
# End-to-end FTL integrity
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       ftl_class=st.sampled_from([GeckoFTL, DFTL]))
def test_ftl_reads_return_latest_writes(seed, ftl_class):
    config = simulation_configuration(num_blocks=48, pages_per_block=8,
                                      page_size=256)
    ftl = ftl_class(FlashDevice(config), cache_capacity=48)
    rng = random.Random(seed)
    shadow = {}
    for i in range(600):
        logical = rng.randrange(config.logical_pages)
        payload = (seed, logical, i)
        ftl.write(logical, payload)
        shadow[logical] = payload
    sample = rng.sample(sorted(shadow), min(60, len(shadow)))
    for logical in sample:
        assert ftl.read(logical) == shadow[logical]


# ----------------------------------------------------------------------
# Whole-word validity bitmaps vs a per-page reference
# ----------------------------------------------------------------------
bitmap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("invalid"), st.integers(0, 31),
                  st.integers(0, 1023)),
        st.tuples(st.just("batch"),
                  st.lists(st.tuples(st.integers(0, 31),
                                     st.integers(0, 1023)),
                           max_size=40),
                  st.just(0)),
        st.tuples(st.just("erase"), st.integers(0, 31), st.just(0)),
    ),
    min_size=1, max_size=200)


def _check_pvb_against_reference(pages_per_block, operations):
    """Drive RamPVB and a per-page set-of-offsets model with the same ops."""
    from repro.ftl.validity.pvb_ram import RamPVB

    config = simulation_configuration(num_blocks=32,
                                      pages_per_block=pages_per_block,
                                      page_size=256)
    pvb = RamPVB(config)
    reference = {block: set() for block in range(config.num_blocks)}
    for kind, first, second in operations:
        if kind == "invalid":
            page = second % pages_per_block
            pvb.mark_invalid(PhysicalAddress(first, page))
            reference[first].add(page)
        elif kind == "batch":
            addresses = [PhysicalAddress(block, page % pages_per_block)
                         for block, page in first]
            pvb.invalidate_pages(addresses)
            for address in addresses:
                reference[address.block].add(address.page)
        else:
            pvb.note_erase(first)
            reference[first].clear()
    for block in range(config.num_blocks):
        assert pvb.invalid_offsets(block) == reference[block]
        for written in (0, 1, pages_per_block // 2, pages_per_block):
            expected = written - sum(1 for offset in reference[block]
                                     if offset < written)
            assert pvb.count_valid(block, written) == expected


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=bitmap_ops)
def test_packed_word_bitmap_matches_reference(operations):
    """B <= 64: the packed one-word-per-block array('Q') fast path."""
    _check_pvb_against_reference(32, operations)


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=bitmap_ops)
def test_bigint_side_table_matches_reference(operations):
    """B > 64: the arbitrary-width big-int side table takes over."""
    _check_pvb_against_reference(96, operations)


@settings(max_examples=100, deadline=None)
@given(total_bits=st.integers(1, 200),
       runs=st.lists(st.tuples(st.integers(0, 199), st.integers(0, 199)),
                     max_size=20))
def test_set_bit_run_and_popcount_match_per_bit_reference(total_bits, runs):
    """The block column's run setter against a per-bit reference."""
    from array import array

    from repro.flash.block import popcount_words, set_bit_run

    words = array("Q", bytes(8 * ((total_bits + 63) >> 6)))
    reference = set()
    for start, stop in runs:
        start, stop = start % total_bits, stop % total_bits
        set_bit_run(words, start, stop)
        reference.update(range(start, stop))
    assert popcount_words(words) == len(reference)
    for bit in range(total_bits):
        assert bool(words[bit >> 6] >> (bit & 63) & 1) == (bit in reference)
