"""Unit tests for IO accounting and write-amplification computation."""

import pytest

from repro.flash.config import LatencyConfig
from repro.flash.stats import IOKind, IOPurpose, IOStats


class TestCounting:
    def test_record_and_total(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=3)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.GC)
        assert stats.total(IOKind.PAGE_WRITE) == 4
        assert stats.total(IOKind.PAGE_WRITE, IOPurpose.GC) == 1

    def test_property_shortcuts(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_READ)
        stats.record(IOKind.SPARE_READ)
        stats.record(IOKind.BLOCK_ERASE)
        assert stats.page_reads == 1
        assert stats.spare_reads == 1
        assert stats.block_erases == 1

    def test_breakdown_nests_purpose_then_kind(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.VALIDITY, amount=2)
        breakdown = stats.breakdown()
        assert breakdown["validity"]["page_write"] == 2

    def test_purposes_lists_only_recorded(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER)
        assert list(stats.purposes()) == [IOPurpose.USER]


class TestWriteAmplification:
    def test_zero_host_writes_gives_zero(self):
        assert IOStats().write_amplification(delta=10) == 0.0

    def test_formula_counts_reads_at_one_over_delta(self):
        stats = IOStats()
        stats.record_host_write(100)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=100)
        stats.record(IOKind.PAGE_READ, IOPurpose.GC, amount=50)
        assert stats.write_amplification(delta=10) == pytest.approx(
            (100 + 50 / 10) / 100)

    def test_purpose_filter(self):
        stats = IOStats()
        stats.record_host_write(10)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=10)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.VALIDITY, amount=5)
        validity_only = stats.write_amplification(
            delta=10, include_purposes=[IOPurpose.VALIDITY])
        assert validity_only == pytest.approx(0.5)

    def test_explicit_host_writes_override(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=20)
        assert stats.write_amplification(delta=10, host_writes=10) == 2.0


class TestSnapshots:
    def test_diff_isolates_an_interval(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=5)
        stats.record_host_write(5)
        snapshot = stats.snapshot()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=3)
        stats.record_host_write(3)
        interval = stats.diff(snapshot)
        assert interval.total(IOKind.PAGE_WRITE) == 3
        assert interval.host_writes == 3

    def test_snapshot_is_independent(self):
        stats = IOStats()
        snapshot = stats.snapshot()
        stats.record(IOKind.PAGE_READ)
        assert snapshot.page_reads == 0

    def test_reset_clears_everything(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_READ)
        stats.record_host_write()
        stats.reset()
        assert stats.page_reads == 0
        assert stats.host_writes == 0


class TestLatencyAccounting:
    def test_latency_us_sums_operation_costs(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_READ, amount=2)
        stats.record(IOKind.PAGE_WRITE, amount=1)
        stats.record(IOKind.SPARE_READ, amount=10)
        latency = LatencyConfig()
        expected = 2 * 100.0 + 1 * 1000.0 + 10 * 3.0
        assert stats.latency_us(latency) == pytest.approx(expected)
