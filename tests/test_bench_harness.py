"""Tests for the experiment harness and the reporting helpers."""

import pytest

from repro.bench.harness import (
    FTL_FACTORIES,
    ExperimentConfig,
    build_ftl,
    compare_ftls,
    run_experiment,
    write_amplification_breakdown,
)
from repro.bench.reporting import (
    format_bytes,
    format_seconds,
    format_table,
    print_report,
)
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose, IOStats


def small_config():
    return simulation_configuration(num_blocks=64, pages_per_block=8,
                                    page_size=256)


class TestHarness:
    def test_build_ftl_knows_all_paper_ftls(self):
        device = FlashDevice(small_config())
        for name in ("DFTL", "LazyFTL", "uFTL", "IB-FTL", "GeckoFTL"):
            ftl = build_ftl(name, device=FlashDevice(small_config()),
                            cache_capacity=64)
            assert ftl.describe()["ftl"] == name
        assert set(FTL_FACTORIES) == {"DFTL", "LazyFTL", "uFTL", "IB-FTL",
                                      "GeckoFTL"}

    def test_build_ftl_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            build_ftl("NopeFTL", FlashDevice(small_config()), 64)

    def test_run_experiment_produces_all_measurements(self):
        config = ExperimentConfig(ftl_name="GeckoFTL", device=small_config(),
                                  cache_capacity=64, write_operations=1500,
                                  interval_writes=500)
        result = run_experiment(config)
        assert result.wa_total > 0
        assert result.run.host_writes == 1500
        assert "user" in result.wa_breakdown
        assert result.ram_breakdown
        assert result.row()["ftl"] == "GeckoFTL"

    def test_warmup_is_excluded_from_measurements(self):
        config = ExperimentConfig(ftl_name="DFTL", device=small_config(),
                                  cache_capacity=64, write_operations=500,
                                  interval_writes=250)
        result = run_experiment(config)
        assert result.run.host_writes == 500  # fill writes not counted

    def test_compare_ftls_runs_every_requested_ftl(self):
        results = compare_ftls(["DFTL", "GeckoFTL"], small_config(),
                               cache_capacity=64, write_operations=1000)
        assert [r.config.ftl_name for r in results] == ["DFTL", "GeckoFTL"]

    def test_compare_ftls_accepts_specs_with_non_literal_kwargs(self):
        from repro.api import FTLSpec
        from repro.ftl.garbage_collector import VictimPolicy
        spec = FTLSpec("GeckoFTL", {"victim_policy": VictimPolicy.GREEDY})
        results = compare_ftls([spec], small_config(), cache_capacity=64,
                               write_operations=500)
        assert results[0].ftl_description["victim_policy"] == "greedy"

    def test_variants_of_one_ftl_stay_distinguishable_in_rows(self):
        results = compare_ftls(["GeckoFTL(cache_capacity=32)",
                                "GeckoFTL(cache_capacity=96)"],
                               small_config(), write_operations=500)
        labels = [result.row()["ftl"] for result in results]
        assert labels == ["GeckoFTL(cache_capacity=32)",
                          "GeckoFTL(cache_capacity=96)"]

    def test_wa_breakdown_sums_to_total(self):
        stats = IOStats()
        stats.record_host_write(100)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, amount=100)
        stats.record(IOKind.PAGE_WRITE, IOPurpose.VALIDITY, amount=20)
        stats.record(IOKind.PAGE_READ, IOPurpose.GC, amount=10)
        breakdown = write_amplification_breakdown(stats, delta=10)
        assert sum(breakdown.values()) == pytest.approx(
            stats.write_amplification(10))


class TestReporting:
    def test_format_table_aligns_columns(self):
        rows = [{"ftl": "GeckoFTL", "wa": 1.5}, {"ftl": "DFTL", "wa": 2.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "GeckoFTL" in text and "2.25" in text

    def test_format_table_handles_empty_rows(self):
        assert "(no data)" in format_table([], title="empty")

    def test_format_table_respects_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_bytes_scales_units(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(64 * 2**20) == "64.00 MB"
        assert format_bytes(3 * 2**30) == "3.00 GB"

    def test_format_seconds_scales_units(self):
        assert format_seconds(0.00002).endswith("us")
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(36).endswith("s")
        assert format_seconds(600).endswith("min")

    def test_print_report_writes_to_stdout(self, capsys):
        print_report("title", [{"x": 1}])
        captured = capsys.readouterr().out
        assert "title" in captured
        assert "x" in captured
