"""Tests for workload generators, the runner, and trace record/replay."""

import io

import pytest

from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.dftl import DFTL
from repro.workloads.base import (
    OpKind,
    Operation,
    WorkloadRunner,
    fill_device,
)
from repro.workloads.generators import (
    HotColdWrites,
    MixedReadWrite,
    SequentialWrites,
    UniformRandomWrites,
    ZipfianWrites,
)
from repro.workloads.ingest import (
    StreamingTraceWorkload,
    TraceFormatError,
    parse_trace_line,
    record_trace,
)
# The legacy eager-list API: still importable, now a deprecation shim over
# repro.workloads.ingest (see TestTrace / TestTraceGzipAndErrors).
from repro.workloads.trace import TraceWorkload, load_trace


LOGICAL_PAGES = 1000


class TestGenerators:
    def test_uniform_stays_in_range(self):
        workload = UniformRandomWrites(LOGICAL_PAGES, seed=1)
        for operation in workload.operations(500):
            assert 0 <= operation.logical < LOGICAL_PAGES
            assert operation.kind is OpKind.WRITE

    def test_uniform_is_deterministic_given_a_seed(self):
        first = [op.logical for op in
                 UniformRandomWrites(LOGICAL_PAGES, seed=7).operations(100)]
        second = [op.logical for op in
                  UniformRandomWrites(LOGICAL_PAGES, seed=7).operations(100)]
        assert first == second

    def test_different_seeds_differ(self):
        first = [op.logical for op in
                 UniformRandomWrites(LOGICAL_PAGES, seed=1).operations(100)]
        second = [op.logical for op in
                  UniformRandomWrites(LOGICAL_PAGES, seed=2).operations(100)]
        assert first != second

    def test_reset_restarts_the_stream(self):
        workload = UniformRandomWrites(LOGICAL_PAGES, seed=5)
        first = [op.logical for op in workload.operations(50)]
        workload.reset()
        second = [op.logical for op in workload.operations(50)]
        assert first == second

    def test_sequential_wraps_around(self):
        workload = SequentialWrites(10, start=8)
        logicals = [op.logical for op in workload.operations(5)]
        assert logicals == [8, 9, 0, 1, 2]

    def test_zipfian_is_skewed(self):
        workload = ZipfianWrites(LOGICAL_PAGES, seed=3, theta=0.99)
        counts = {}
        for operation in workload.operations(3000):
            counts[operation.logical] = counts.get(operation.logical, 0) + 1
        top_share = max(counts.values()) / 3000
        distinct = len(counts)
        assert top_share > 0.05          # a few pages dominate
        assert distinct < LOGICAL_PAGES  # far from uniform coverage

    def test_zipfian_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianWrites(LOGICAL_PAGES, theta=2.5)

    def test_hot_cold_concentrates_on_hot_set(self):
        workload = HotColdWrites(LOGICAL_PAGES, seed=4, hot_fraction=0.1,
                                 hot_probability=0.9)
        hot_hits = sum(1 for op in workload.operations(2000)
                       if op.logical < LOGICAL_PAGES * 0.1)
        assert hot_hits > 1600

    def test_hot_cold_validates_fractions(self):
        with pytest.raises(ValueError):
            HotColdWrites(LOGICAL_PAGES, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdWrites(LOGICAL_PAGES, hot_probability=1.0)

    def test_mixed_read_write_emits_reads_of_written_pages(self):
        base = UniformRandomWrites(LOGICAL_PAGES, seed=6)
        workload = MixedReadWrite(base, read_fraction=0.5, seed=6)
        written = set()
        reads = 0
        for operation in workload.operations(1000):
            if operation.kind is OpKind.WRITE:
                written.add(operation.logical)
            else:
                reads += 1
                assert operation.logical in written
        assert reads > 100

    def test_workload_rejects_nonpositive_space(self):
        with pytest.raises(ValueError):
            UniformRandomWrites(0)


class TestRunner:
    @pytest.fixture
    def ftl(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        ftl = DFTL(FlashDevice(config), cache_capacity=64)
        fill_device(ftl)
        return ftl

    def test_runner_counts_host_operations(self, ftl):
        runner = WorkloadRunner(ftl, interval_writes=100)
        result = runner.run(UniformRandomWrites(ftl.config.logical_pages,
                                                seed=1), 450)
        assert result.operations_executed == 450
        assert result.host_writes == 450

    def test_intervals_partition_the_run(self, ftl):
        runner = WorkloadRunner(ftl, interval_writes=100)
        result = runner.run(UniformRandomWrites(ftl.config.logical_pages,
                                                seed=1), 450)
        assert len(result.intervals) == 5
        assert sum(i.host_writes for i in result.intervals) == 450

    def test_interval_callback_is_invoked(self, ftl):
        seen = []
        runner = WorkloadRunner(ftl, interval_writes=50)
        runner.run(UniformRandomWrites(ftl.config.logical_pages, seed=1), 200,
                   on_interval=lambda measurement: seen.append(measurement))
        assert len(seen) == 4

    def test_steady_state_wa_skips_warmup(self, ftl):
        runner = WorkloadRunner(ftl, interval_writes=100)
        result = runner.run(UniformRandomWrites(ftl.config.logical_pages,
                                                seed=1), 800)
        overall = result.write_amplification(ftl.config.delta)
        steady = result.steady_state_write_amplification(ftl.config.delta)
        assert overall > 0
        assert steady > 0

    def test_fill_device_writes_whole_logical_space(self, ftl):
        # The fixture already filled it; a fresh one for an exact count.
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        fresh = DFTL(FlashDevice(config), cache_capacity=64)
        written = fill_device(fresh, fraction=1.0)
        assert written == fresh.config.logical_pages
        assert fresh.read(written - 1) is not None


    def test_batches_flatten_to_the_operation_trace(self):
        """Chunked generation must be a pure re-batching of operations()."""
        def mixed(seed):
            return MixedReadWrite(UniformRandomWrites(LOGICAL_PAGES,
                                                      seed=seed))

        for factory in (UniformRandomWrites, SequentialWrites,
                        ZipfianWrites, HotColdWrites, mixed):
            reference = _materialize(factory(5), 333) \
                if factory is mixed else \
                _materialize(factory(LOGICAL_PAGES, seed=5), 333)
            for batch_ops in (1, 7, 256, 1000):
                workload = factory(5) if factory is mixed \
                    else factory(LOGICAL_PAGES, seed=5)
                flattened = [(op.kind, op.logical, op.payload)
                             for chunk in workload.batches(333, batch_ops)
                             for op in chunk]
                assert flattened == reference, \
                    (getattr(factory, "__name__", "mixed"), batch_ops)

    def test_batches_rejects_nonpositive_chunk(self):
        workload = UniformRandomWrites(LOGICAL_PAGES, seed=5)
        with pytest.raises(ValueError):
            next(workload.batches(10, 0))

    def test_run_is_chunk_size_invariant(self):
        """Same trace, intervals, and counters for any max_batch_ops."""
        def run_with(max_batch_ops):
            config = simulation_configuration(num_blocks=64,
                                              pages_per_block=8,
                                              page_size=256)
            ftl = DFTL(FlashDevice(config), cache_capacity=64)
            fill_device(ftl)
            ftl.device.stats.reset()
            runner = WorkloadRunner(ftl, interval_writes=100,
                                    max_batch_ops=max_batch_ops)
            result = runner.run(
                UniformRandomWrites(config.logical_pages, seed=9), 450)
            return ([(m.interval_index, m.host_writes,
                      m.stats.page_writes, m.stats.page_reads)
                     for m in result.intervals],
                    result.final_stats.page_writes,
                    result.final_stats.page_reads,
                    result.host_writes)

        reference = run_with(4096)
        for max_batch_ops in (1, 33, 100, 101, 256):
            assert run_with(max_batch_ops) == reference, max_batch_ops


def _materialize(workload, count):
    return [(op.kind, op.logical, op.payload)
            for op in workload.operations(count)]


class TestReset:
    """reset() must restore *full* generator state, not just the RNG."""

    @pytest.fixture(params=["uniform", "sequential", "zipfian", "hotcold",
                            "mixed", "trace"])
    def workload(self, request, tmp_path_factory):
        if request.param == "uniform":
            return UniformRandomWrites(LOGICAL_PAGES, seed=9)
        if request.param == "sequential":
            return SequentialWrites(LOGICAL_PAGES, seed=9, start=17)
        if request.param == "zipfian":
            return ZipfianWrites(LOGICAL_PAGES, seed=9, theta=0.9)
        if request.param == "hotcold":
            return HotColdWrites(LOGICAL_PAGES, seed=9, hot_fraction=0.2,
                                 hot_probability=0.8)
        if request.param == "mixed":
            return MixedReadWrite(UniformRandomWrites(LOGICAL_PAGES, seed=9),
                                  read_fraction=0.4, seed=9)
        path = tmp_path_factory.mktemp("reset") / "trace.txt"
        record_trace([Operation(OpKind.WRITE, i % 40) for i in range(120)],
                     path)
        return StreamingTraceWorkload(path, LOGICAL_PAGES, wrap=True)

    def test_two_consecutive_runs_are_identical(self, workload):
        first = _materialize(workload, 200)
        workload.reset()
        second = _materialize(workload, 200)
        assert first == second

    def test_reset_mid_stream_restarts_from_the_beginning(self, workload):
        reference = _materialize(workload, 200)
        workload.reset()
        _materialize(workload, 37)  # leave the generator mid-stream
        workload.reset()
        assert _materialize(workload, 200) == reference

    def test_runner_reruns_of_one_workload_match(self, workload):
        """Two FTL runs of the same (reset) workload see identical streams."""
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        results = []
        for _ in range(2):
            ftl = DFTL(FlashDevice(config), cache_capacity=64)
            fill_device(ftl)
            ftl.stats.reset()
            workload.reset()
            # Cap the logical space: the shared workloads address
            # LOGICAL_PAGES pages, the tiny device fewer — remap by modulo.
            ops = [Operation(op.kind, op.logical % ftl.config.logical_pages,
                             op.payload)
                   for op in workload.operations(300)]
            ftl.submit(ops)
            results.append(dict(ftl.stats.counts))
        assert results[0] == results[1]


class TestTrace:
    def test_parse_valid_lines(self):
        assert parse_trace_line("W 12").kind is OpKind.WRITE
        assert parse_trace_line("r 3").kind is OpKind.READ
        assert parse_trace_line("T 9").kind is OpKind.TRIM

    def test_parse_skips_blank_and_comment_lines(self):
        assert parse_trace_line("") is None
        assert parse_trace_line("# comment") is None

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_trace_line("W")
        with pytest.raises(ValueError):
            parse_trace_line("X 3")
        with pytest.raises(ValueError):
            parse_trace_line("W -1")

    def test_record_and_load_roundtrip(self):
        operations = [Operation(OpKind.WRITE, 3), Operation(OpKind.READ, 3),
                      Operation(OpKind.TRIM, 4)]
        buffer = io.StringIO()
        count = record_trace(operations, buffer)
        assert count == 3
        buffer.seek(0)
        with pytest.warns(DeprecationWarning):
            loaded = load_trace(buffer)
        assert [(op.kind, op.logical) for op in loaded] == [
            (OpKind.WRITE, 3), (OpKind.READ, 3), (OpKind.TRIM, 4)]

    def test_trace_workload_replays_in_order(self):
        operations = [Operation(OpKind.WRITE, i, ("t", i)) for i in range(5)]
        with pytest.warns(DeprecationWarning):
            workload = TraceWorkload(operations, logical_pages=10)
        replayed = [op.logical for op in workload.operations(10)]
        assert replayed == [0, 1, 2, 3, 4]

    def test_trace_workload_wraps_when_asked(self):
        operations = [Operation(OpKind.WRITE, i) for i in range(3)]
        with pytest.warns(DeprecationWarning):
            workload = TraceWorkload(operations, logical_pages=10, wrap=True)
        replayed = [op.logical for op in workload.operations(7)]
        assert replayed == [0, 1, 2, 0, 1, 2, 0]

    def test_trace_workload_rejects_out_of_range_pages(self):
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            TraceWorkload([Operation(OpKind.WRITE, 99)], logical_pages=10)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        operations = [Operation(OpKind.WRITE, i) for i in range(4)]
        record_trace(operations, path)
        with pytest.warns(DeprecationWarning):
            workload = TraceWorkload.from_file(path, logical_pages=10)
        assert [op.logical for op in workload.operations(4)] == [0, 1, 2, 3]


class TestTraceGzipAndErrors:
    """Transparent .gz trace IO and line-numbered parse failures."""

    def test_gzip_roundtrip_by_suffix(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        operations = [Operation(OpKind.WRITE, i) for i in range(50)]
        record_trace(operations, path)
        # The file really is gzip (magic bytes), not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        with pytest.warns(DeprecationWarning):
            loaded = load_trace(path)
        assert [op.logical for op in loaded] == list(range(50))

    def test_gzip_workload_from_file(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        record_trace([Operation(OpKind.WRITE, i) for i in range(5)], path)
        with pytest.warns(DeprecationWarning):
            workload = TraceWorkload.from_file(path, logical_pages=10)
        assert [op.logical for op in workload.operations(5)] == [0, 1, 2, 3, 4]

    def test_malformed_line_reports_file_and_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("W 1\n# fine\nW xyz\n")
        with pytest.warns(DeprecationWarning), \
                pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert excinfo.value.line_number == 3
        assert excinfo.value.source == str(path)
        assert f"{path}:3:" in str(excinfo.value)

    def test_malformed_gzip_line_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        import gzip
        with gzip.open(path, "wt") as handle:
            handle.write("W 1\nQ 2\n")
        with pytest.warns(DeprecationWarning), \
                pytest.raises(TraceFormatError, match=":2:"):
            load_trace(path)

    def test_error_is_still_a_value_error(self):
        # Backwards compatibility: existing `except ValueError` keeps working.
        with pytest.raises(ValueError):
            parse_trace_line("W one two three")
        assert issubclass(TraceFormatError, ValueError)

    def test_parse_trace_line_tags_standalone_line_numbers(self):
        with pytest.raises(TraceFormatError, match="line 7:"):
            parse_trace_line("bogus line", line_number=7)

    def test_non_integer_page_is_a_format_error(self):
        with pytest.raises(TraceFormatError, match="non-integer"):
            parse_trace_line("W 3.5")
