"""Unit tests for the Gecko buffer and run directories."""

import pytest

from repro.core.buffer import GeckoBuffer
from repro.core.gecko_entry import EntryColumns, EntryLayout, GeckoEntry
from repro.core.run import GeckoPagePayload, Run, RunDirectorySet, RunPageInfo
from repro.flash.address import PhysicalAddress


@pytest.fixture
def layout():
    return EntryLayout(pages_per_block=8, page_size=128, partition_factor=2)


class TestGeckoBuffer:
    def test_insert_invalid_sets_the_right_bit(self, layout):
        buffer = GeckoBuffer(layout)
        buffer.insert_invalid(3, 5)
        entries = buffer.entries_for_block(3)
        assert len(entries) == 1
        assert entries[0].sub_key == 1      # offset 5 is in the second slice
        assert entries[0].bitmap == 0b10    # bit 1 within that slice

    def test_repeated_inserts_reuse_the_entry(self, layout):
        buffer = GeckoBuffer(layout)
        buffer.insert_invalid(3, 0)
        buffer.insert_invalid(3, 1)
        assert len(buffer) == 1
        assert buffer.entries_for_block(3)[0].bitmap == 0b11

    def test_offset_out_of_range_rejected(self, layout):
        buffer = GeckoBuffer(layout)
        with pytest.raises(ValueError):
            buffer.insert_invalid(3, 99)

    def test_insert_erase_replaces_block_records(self, layout):
        buffer = GeckoBuffer(layout)
        buffer.insert_invalid(3, 0)
        buffer.insert_invalid(3, 5)
        buffer.insert_erase(3)
        entries = buffer.entries_for_block(3)
        assert len(entries) == 1
        assert entries[0].erase_flag
        assert entries[0].bitmap == 0

    def test_capacity_matches_layout(self, layout):
        assert GeckoBuffer(layout).capacity == layout.entries_per_page

    def test_is_full(self, layout):
        buffer = GeckoBuffer(layout)
        block = 0
        while not buffer.is_full:
            buffer.insert_invalid(block, 0)
            block += 1
        assert len(buffer) == buffer.capacity

    def test_drain_returns_sorted_entries_and_empties(self, layout):
        buffer = GeckoBuffer(layout)
        buffer.insert_invalid(5, 0)
        buffer.insert_invalid(2, 7)
        drained = buffer.drain()
        assert [entry.block_id for entry in drained] == [2, 5]
        assert len(buffer) == 0

    def test_clear(self, layout):
        buffer = GeckoBuffer(layout)
        buffer.insert_invalid(1, 1)
        buffer.clear()
        assert len(buffer) == 0

    def test_ram_bytes_is_one_page(self, layout):
        assert GeckoBuffer(layout).ram_bytes == layout.page_size


class TestRunDirectories:
    def make_run(self, run_id, level, timestamp, keys=((0, 0), (5, 1))):
        run = Run(run_id=run_id, level=level, creation_timestamp=timestamp)
        run.pages.append(RunPageInfo(location=PhysicalAddress(0, run_id),
                                     min_key=keys[0], max_key=keys[1]))
        return run

    def test_add_and_get(self):
        directory = RunDirectorySet()
        run = self.make_run(1, 0, 10)
        directory.add(run)
        assert directory.get(1) is run
        assert 1 in directory

    def test_all_runs_is_newest_first(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 0, 10))
        directory.add(self.make_run(2, 0, 20))
        assert [run.run_id for run in directory.all_runs()] == [2, 1]

    def test_runs_at_level_is_oldest_first(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 1, 30))
        directory.add(self.make_run(2, 1, 20))
        assert [run.run_id for run in directory.runs_at_level(1)] == [2, 1]

    def test_levels_and_totals(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 0, 10))
        directory.add(self.make_run(2, 2, 20))
        assert directory.levels() == [0, 2]
        assert directory.total_pages() == 2

    def test_remove(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 0, 10))
        directory.remove(1)
        assert len(directory) == 0

    def test_ram_bytes_counts_pages(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 0, 10))
        assert directory.ram_bytes() == 8

    def test_pages_overlapping_uses_key_ranges(self):
        run = Run(run_id=1, level=0, creation_timestamp=1)
        run.pages.append(RunPageInfo(PhysicalAddress(0, 0), (0, 0), (4, 9)))
        run.pages.append(RunPageInfo(PhysicalAddress(0, 1), (5, 0), (9, 9)))
        assert len(run.pages_overlapping(3)) == 1
        assert len(run.pages_overlapping(5)) == 1
        assert len(run.pages_overlapping(12)) == 0

    def test_clear_drops_everything(self):
        directory = RunDirectorySet()
        directory.add(self.make_run(1, 0, 10))
        directory.clear()
        assert len(directory) == 0


class TestGeckoPagePayload:
    def test_copy_does_not_share_columns(self):
        payload = GeckoPagePayload.from_entries(
            run_id=1, level=0, sequence=0, is_last=True,
            entries=(GeckoEntry(1, bitmap=1),), manifest=(1,))
        copy = payload.copy()
        copy.columns.words[0] = 0b10
        assert payload.entries[0].bitmap == 0b1
        assert copy.entries[0].bitmap == 0b10

    def test_tuple_of_entries_is_coerced_to_columns(self):
        payload = GeckoPagePayload(1, 0, 0, True,
                                   (GeckoEntry(2, bitmap=0b101),))
        assert isinstance(payload.columns, EntryColumns)
        assert payload.entries[0].block_id == 2
        assert payload.entries[0].bitmap == 0b101
