"""Tests for repro.workloads.ingest: trace formats, streaming replay,
LPN windowing, out-of-range policies, and the multi-tenant mixer."""

import gzip
import tracemalloc
from itertools import islice

import pytest

from repro import SweepPlan, run_sweep
from repro.engine import canonical_row_bytes
from repro.workloads import (
    SequentialWrites,
    UniformRandomWrites,
    WorkloadSpec,
)
from repro.workloads.base import Operation, OpKind
from repro.workloads.ingest import (
    TRACE_FORMATS,
    StreamingTraceWorkload,
    TenantMix,
    TraceFormatError,
    get_trace_format,
    iter_trace_records,
    record_trace,
)

DEVICE = {"num_blocks": 64, "pages_per_block": 8, "page_size": 256}


def _msr_line(kind, offset, size, timestamp=128166372000000000):
    return f"{timestamp},host,0,{kind},{offset},{size},100\n"


class TestFormats:
    def test_registry_has_all_adapters(self):
        assert set(TRACE_FORMATS) >= {"native", "msr", "fiu", "blktrace"}
        assert get_trace_format("msr").byte_addressed
        assert not get_trace_format("native").byte_addressed

    def test_msr_parses_type_offset_size(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(_msr_line("Write", 8192, 4096) +
                        _msr_line("Read", 0, 512))
        records = [record for record, _ in
                   iter_trace_records(path, get_trace_format("msr"))]
        assert [(r.kind, r.offset, r.size) for r in records] == [
            (OpKind.WRITE, 8192, 4096), (OpKind.READ, 0, 512)]

    def test_fiu_lba_is_512_byte_sectors(self, tmp_path):
        path = tmp_path / "t.spc"
        path.write_text("0,100,4096,W,0.015\n0,8,512,r,0.016\n")
        records = [record for record, _ in
                   iter_trace_records(path, get_trace_format("fiu"))]
        assert records[0].offset == 100 * 512
        assert records[0].kind is OpKind.WRITE
        assert records[1].offset == 8 * 512
        assert records[1].kind is OpKind.READ

    def test_blktrace_replays_only_queue_events(self, tmp_path):
        path = tmp_path / "t.blk"
        path.write_text(
            "8,0 1 1 0.000000000 1234 Q W 2048 + 8 [proc]\n"
            "8,0 1 2 0.000000010 1234 C W 2048 + 8 [proc]\n"
            "8,0 1 3 0.000000020 1234 Q R 0 + 8 [proc]\n"
            "8,0 1 4 0.000000030 1234 Q D 16 + 8 [proc]\n")
        records = [record for record, _ in
                   iter_trace_records(path, get_trace_format("blktrace"))]
        # The completion (C) event is skipped; Q events replay.
        assert [(r.kind, r.offset) for r in records] == [
            (OpKind.WRITE, 2048 * 512), (OpKind.READ, 0),
            (OpKind.TRIM, 16 * 512)]

    @pytest.mark.parametrize("format_name,bad", [
        ("msr", "notanumber,host,0,Write,0,4096,1\n"),
        ("msr", "1,host,0,Frobnicate,0,4096,1\n"),
        ("fiu", "0,xyz,4096,W,0.1\n"),
        ("blktrace", "8,0 1 1 0.0 99 Q W notanumber + 8 [p]\n"),
        ("native", "W 1.5\n"),
    ])
    def test_malformed_lines_carry_line_numbers(self, tmp_path,
                                                format_name, bad):
        path = tmp_path / "t.trace"
        good = {"msr": _msr_line("Write", 0, 4096),
                "fiu": "0,1,4096,W,0.1\n",
                "blktrace": "8,0 1 1 0.0 99 Q W 0 + 8 [p]\n",
                "native": "W 1\n"}[format_name]
        path.write_text(good + bad)
        with pytest.raises(TraceFormatError) as excinfo:
            for _ in iter_trace_records(path, format_name):
                pass
        assert excinfo.value.line_number == 2
        assert f"{path}:2:" in str(excinfo.value)

    def test_malformed_line_number_survives_gzip(self, tmp_path):
        path = tmp_path / "t.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(_msr_line("Write", 0, 4096))
            handle.write(_msr_line("Write", 4096, 4096))
            handle.write("garbage\n")
        with pytest.raises(TraceFormatError, match=":3:"):
            for _ in iter_trace_records(path, "msr"):
                pass


class TestWindowing:
    def _workload(self, tmp_path, text, pages=16, **kwargs):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return StreamingTraceWorkload(path, pages, format="msr", **kwargs)

    def test_request_spanning_pages_emits_one_op_per_page(self, tmp_path):
        # 8 KB at byte 4096 touches pages 1 and 2 at the default 4 KB scale.
        workload = self._workload(tmp_path, _msr_line("Write", 4096, 8192))
        ops = list(workload.operations(10))
        assert [op.logical for op in ops] == [1, 2]
        assert all(op.kind is OpKind.WRITE for op in ops)
        assert ops[0].payload == ("trace", 1)

    def test_lpn_scale_changes_the_window(self, tmp_path):
        workload = self._workload(tmp_path, _msr_line("Write", 4096, 8192),
                                  lpn_scale=8192)
        assert [op.logical for op in workload.operations(10)] == [0, 1]

    def test_zero_size_request_touches_one_page(self, tmp_path):
        workload = self._workload(tmp_path, _msr_line("Read", 8192, 0))
        assert [op.logical for op in workload.operations(10)] == [2]

    def test_oor_clip_clamps_to_last_page(self, tmp_path):
        workload = self._workload(
            tmp_path, _msr_line("Write", 16 * 4096 + 4096, 4096), oor="clip")
        assert [op.logical for op in workload.operations(10)] == [15]

    def test_oor_wrap_folds_modulo_device(self, tmp_path):
        workload = self._workload(
            tmp_path, _msr_line("Write", 17 * 4096, 4096), oor="wrap")
        assert [op.logical for op in workload.operations(10)] == [1]

    def test_oor_error_raises_with_line_number(self, tmp_path):
        workload = self._workload(
            tmp_path,
            _msr_line("Write", 0, 4096) + _msr_line("Write", 99 * 4096, 4096),
            oor="error")
        with pytest.raises(TraceFormatError, match=":2:"):
            list(workload.operations(10))

    def test_invalid_policy_and_scale_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(_msr_line("Write", 0, 4096))
        with pytest.raises(ValueError):
            StreamingTraceWorkload(path, 16, format="msr", oor="panic")
        with pytest.raises(ValueError):
            StreamingTraceWorkload(path, 16, format="msr", lpn_scale=0)


class TestStreamingReplay:
    def test_matches_recorded_operations(self, tmp_path):
        path = tmp_path / "t.txt"
        source = [Operation(OpKind.WRITE, i % 7) for i in range(30)]
        record_trace(source, path)
        workload = StreamingTraceWorkload(path, 16)
        replayed = list(workload.operations(30))
        assert [(op.kind, op.logical) for op in replayed] == \
            [(op.kind, op.logical) for op in source]

    def test_wrap_restarts_the_file(self, tmp_path):
        path = tmp_path / "t.txt"
        record_trace([Operation(OpKind.WRITE, i) for i in range(3)], path)
        workload = StreamingTraceWorkload(path, 16, wrap=True)
        assert [op.logical for op in workload.operations(7)] == \
            [0, 1, 2, 0, 1, 2, 0]

    def test_empty_trace_with_wrap_terminates(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# only comments\n")
        workload = StreamingTraceWorkload(path, 16, wrap=True)
        assert list(workload.operations(5)) == []

    def test_gz_reset_mid_stream_reopens_from_line_one(self, tmp_path):
        """Regression: rewinding a .gz trace must reopen the file — seeking
        the decompressed stream back on a shared handle replayed garbage."""
        path = tmp_path / "t.txt.gz"
        record_trace([Operation(OpKind.WRITE, i) for i in range(40)], path)
        workload = StreamingTraceWorkload(path, 64)
        reference = [op.logical for op in workload.operations(40)]
        workload.reset()
        list(workload.operations(13))  # leave the stream mid-file
        workload.reset()
        assert [op.logical for op in workload.operations(40)] == reference

    def test_batches_chunk_size_invariance(self, tmp_path):
        path = tmp_path / "t.csv"
        with path.open("w") as handle:
            for index in range(97):
                handle.write(_msr_line("Write" if index % 3 else "Read",
                                       (index * 4096) % (16 * 4096), 4096))
        def flatten(batch_ops):
            workload = StreamingTraceWorkload(path, 16, format="msr",
                                              wrap=True)
            return [(op.kind, op.logical)
                    for batch in workload.batches(300, batch_ops)
                    for op in batch]
        reference = flatten(256)
        for batch_ops in (1, 7, 100, 299, 1024):
            assert flatten(batch_ops) == reference, batch_ops

    def test_constant_memory_on_a_large_trace(self, tmp_path):
        """A trace far larger than any buffer must stream in O(1) memory.

        200k native lines (~1.4 MB on disk; the same structure scaled to a
        multi-GB MSR trace) are consumed while tracemalloc watches: the peak
        must stay under 1 MB — materializing the operations eagerly would
        need tens of MB.
        """
        path = tmp_path / "big.txt"
        lines = 200_000
        with path.open("w") as handle:
            for index in range(lines):
                handle.write(f"W {index % 512}\n")
        workload = StreamingTraceWorkload(path, 1024, wrap=True)
        stream = workload._iterator()
        consumed = 0
        tracemalloc.start()
        try:
            for _ in range(4):  # cross a wrap boundary too
                for operation in islice(stream, lines // 2):
                    consumed += 1
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert consumed == 2 * lines
        assert peak < 1_000_000, f"streaming replay peaked at {peak} bytes"


class TestTenantMix:
    def _mix(self, **kwargs):
        children = [UniformRandomWrites(64, seed=1),
                    SequentialWrites(64, seed=2)]
        return TenantMix(children, 64, **kwargs)

    def test_every_operation_is_tagged(self):
        mix = self._mix()
        operations = list(mix.operations(100))
        assert {op.tenant for op in operations} == {"t0", "t1"}

    def test_tagging_copies_instead_of_mutating(self):
        child = UniformRandomWrites(64, seed=1)
        mix = TenantMix([child], 64)
        operation = next(iter(mix))
        assert operation.tenant == "t0"
        # The child's own stream keeps emitting untagged operations.
        assert next(iter(child)).tenant is None

    def test_weighted_schedule_is_deterministic(self):
        first = [(op.tenant, op.logical)
                 for op in self._mix(seed=7).operations(200)]
        second = [(op.tenant, op.logical)
                  for op in self._mix(seed=7).operations(200)]
        assert first == second

    def test_weights_skew_the_interleave(self):
        operations = list(self._mix(weights=(9, 1), seed=3).operations(500))
        share = sum(1 for op in operations if op.tenant == "t0") / 500
        assert share > 0.8

    def test_reset_restarts_children_too(self):
        mix = self._mix(seed=11)
        reference = [(op.tenant, op.logical) for op in mix.operations(150)]
        mix.reset()
        list(mix.operations(41))
        mix.reset()
        assert [(op.tenant, op.logical)
                for op in mix.operations(150)] == reference

    def test_exhausted_children_drop_out(self, tmp_path):
        path = tmp_path / "short.txt"
        record_trace([Operation(OpKind.WRITE, 5)] * 4, path)
        mix = TenantMix([StreamingTraceWorkload(path, 64),
                         SequentialWrites(64, seed=2)], 64,
                        names=("trace", "seq"))
        operations = list(mix.operations(50))
        assert len(operations) == 50
        assert sum(1 for op in operations if op.tenant == "trace") == 4
        assert operations[-1].tenant == "seq"

    def test_time_schedule_merges_by_timestamp(self, tmp_path):
        early = tmp_path / "early.csv"
        late = tmp_path / "late.csv"
        early.write_text(_msr_line("Write", 0, 4096, timestamp=100) +
                         _msr_line("Write", 4096, 4096, timestamp=300))
        late.write_text(_msr_line("Write", 8192, 4096, timestamp=200))
        mix = TenantMix(
            [StreamingTraceWorkload(early, 16, format="msr"),
             StreamingTraceWorkload(late, 16, format="msr")],
            16, names=("a", "b"), schedule="time")
        assert [(op.tenant, op.logical) for op in mix.operations(10)] == [
            ("a", 0), ("b", 2), ("a", 1)]

    def test_time_schedule_needs_timestamped_children(self):
        mix = TenantMix([UniformRandomWrites(64, seed=1)], 64,
                        schedule="time")
        with pytest.raises(ValueError, match="timed_iter"):
            list(mix.operations(1))

    def test_registry_spec_builds_a_mix(self):
        spec = WorkloadSpec.of(
            "TenantMix(tenants=('UniformRandomWrites','ZipfianWrites'),"
            "weights=(2,1))")
        mix = spec.build(128, seed=5)
        assert isinstance(mix, TenantMix)
        assert mix.names == ["t0", "t1"]
        # Child seeds are decorrelated from the mix seed and each other.
        seeds = {child.seed for child in mix.children}
        assert len(seeds) == 2 and 5 not in seeds

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantMix([], 64)
        with pytest.raises(ValueError):
            self._mix(weights=(1,))
        with pytest.raises(ValueError):
            self._mix(weights=(1, 0))
        with pytest.raises(ValueError):
            self._mix(names=("same", "same"))
        with pytest.raises(ValueError):
            self._mix(schedule="sometimes")


class TestSweepParity:
    """Canonical rows must be byte-identical across worker counts."""

    def _parity(self, workload_spec):
        plan = SweepPlan(ftls=["GeckoFTL"], workloads=[workload_spec],
                         devices=[DEVICE], cache_capacities=[64], seeds=[42],
                         write_operations=600, interval_writes=300)
        serial = run_sweep(plan, backend="serial")
        pooled = run_sweep(plan, backend="pool(workers=4)")
        lhs = [canonical_row_bytes(row) for row in serial.rows]
        rhs = [canonical_row_bytes(row) for row in pooled.rows]
        assert lhs and lhs == rhs
        return serial.rows

    def test_trace_sweep_parity(self, tmp_path):
        path = tmp_path / "trace.csv"
        with path.open("w") as handle:
            for index in range(500):
                handle.write(_msr_line("Write" if index % 4 else "Read",
                                       (index * 4096) % (256 * 4096), 8192))
        rows = self._parity(f"msr(path='{path}',oor='wrap',wrap=True)")
        assert rows[0]["workload"].startswith("msr(")

    def test_tenant_mix_sweep_parity_carries_tenant_columns(self):
        rows = self._parity(
            "TenantMix(tenants=('UniformRandomWrites','SequentialWrites'),"
            "weights=(3,1))")
        row = rows[0]
        assert row["tenants"] == "t0,t1"
        assert row["tenant_writes_t0"] > row["tenant_writes_t1"] > 0
        for tenant in ("t0", "t1"):
            assert row[f"tenant_wa_{tenant}"] >= 1.0
        breakdown = row["tenant_breakdown"]
        assert set(breakdown) == {"t0", "t1"}

    def test_untenanted_rows_have_no_tenant_columns(self):
        rows = self._parity("UniformRandomWrites")
        assert "tenants" not in rows[0]
        assert not any(key.startswith("tenant_") for key in rows[0])
