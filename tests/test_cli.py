"""Tests for the command-line interface."""

import json

import pytest

from repro.api import FTLSpec
from repro.cli import build_parser, main
from repro.workloads import Operation, OpKind, record_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        arguments = build_parser().parse_args(["compare"])
        assert arguments.ftls == ["GeckoFTL", "uFTL"]
        assert arguments.writes == 4000

    def test_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--ftls", "NopeFTL"])

    def test_ftl_arguments_parse_into_specs(self):
        arguments = build_parser().parse_args(
            ["compare", "--ftls", "GeckoFTL(cache_capacity=64)", "uftl"])
        assert arguments.ftls == [
            FTLSpec("GeckoFTL", {"cache_capacity": 64}), FTLSpec("uFTL")]

    def test_malformed_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--ftls", "GeckoFTL(cache_capacity="])

    def test_replay_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "trace.txt", "--ftl",
                                       "NopeFTL"])


class TestCommands:
    """Drive main() for every subcommand: exit code 0 + expected headers."""

    def test_ram_command_prints_all_ftls(self, capsys):
        assert main(["ram", "--capacity-gb", "2048"]) == 0
        output = capsys.readouterr().out
        assert "Integrated-RAM breakdown at 2048.0 GB (analytical)" in output
        for name in ("DFTL", "LazyFTL", "uFTL", "IB-FTL", "GeckoFTL"):
            assert name in output

    def test_recovery_command_prints_battery_column(self, capsys):
        assert main(["recovery", "--capacity-gb", "512"]) == 0
        output = capsys.readouterr().out
        assert "Recovery-time breakdown at 512.0 GB (analytical)" in output
        assert "battery" in output
        assert "GeckoFTL" in output

    def test_compare_command_small_run(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL", "--writes", "500",
                     "--blocks", "64", "--pages-per-block", "8",
                     "--page-size", "256", "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Write-amplification after 500 random updates" in output
        assert "GeckoFTL" in output
        assert "wa_total" in output

    def test_compare_command_accepts_spec_strings(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL(cache_capacity=32)",
                     "DFTL", "--writes", "400", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "GeckoFTL" in output
        assert "DFTL" in output

    def test_replay_command(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        operations = [Operation(OpKind.WRITE, i % 50) for i in range(300)]
        record_trace(operations, trace)
        code = main(["replay", str(trace), "--ftl", "GeckoFTL",
                     "--writes", "300", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert f"Replay of {trace} against GeckoFTL" in output
        assert "write_amplification" in output
        assert "host_writes" in output


class TestSweepCommand:
    """The `repro sweep` subcommand: grids, plan files, sinks, resume."""

    TINY = ["--blocks", "64", "--pages-per-block", "8", "--page-size", "256",
            "--writes", "400", "--interval-writes", "200"]

    def test_requires_grid_or_plan(self, capsys):
        assert main(["sweep"] + self.TINY) == 2
        assert "needs --grid or --plan" in capsys.readouterr().err

    def test_grid_sweep_prints_progress_and_summary(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL,DFTL cache=32",
                     "--workers", "1"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "[1/2]" in output and "[2/2]" in output
        assert "Sweep of 2 tasks" in output
        assert "executed=2 skipped=0" in output
        assert "GeckoFTL" in output and "DFTL" in output

    def test_invalid_grid_is_a_usage_error(self, capsys):
        assert main(["sweep", "--grid", "cheese=1"] + self.TINY) == 2
        assert "invalid sweep plan" in capsys.readouterr().err

    def test_resume_without_sink_is_a_usage_error(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--resume"] + self.TINY)
        assert code == 2
        assert "--resume needs --sink" in capsys.readouterr().err

    def test_plan_file_sweep(self, tmp_path, capsys):
        plan = {"ftls": ["GeckoFTL"],
                "devices": [{"num_blocks": 64, "pages_per_block": 8,
                             "page_size": 256}],
                "cache_capacities": [32], "seeds": [1],
                "write_operations": 300, "interval_writes": 150}
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        assert main(["sweep", "--plan", str(plan_path)]) == 0
        output = capsys.readouterr().out
        assert "Sweep of 1 tasks" in output

    def test_invalid_plan_file_is_a_usage_error(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"cheese": 1}))
        assert main(["sweep", "--plan", str(plan_path)]) == 2
        assert "invalid sweep plan" in capsys.readouterr().err

    def test_sink_and_resume_skip_completed_tasks(self, tmp_path, capsys):
        sink = tmp_path / "rows.jsonl"
        arguments = ["sweep", "--grid", "ftl=GeckoFTL cache=32,48",
                     "--sink", str(sink)] + self.TINY
        assert main(arguments) == 0
        assert "executed=2 skipped=0" in capsys.readouterr().out
        assert len(sink.read_text().splitlines()) == 2

        assert main(arguments + ["--resume"]) == 0
        assert "executed=0 skipped=2" in capsys.readouterr().out
        assert len(sink.read_text().splitlines()) == 2

    def test_group_by_device_field(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL ratio=0.5,0.7",
                     "--cache-entries", "32",
                     "--group-by", "device.logical_ratio"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "device.logical_ratio" in output
        assert "0.5" in output and "0.7" in output


class TestCrashCli:
    """The `repro crash` subcommand and `repro sweep --crash`."""

    TINY = ["--blocks", "64", "--pages-per-block", "8", "--page-size", "256"]

    def test_crash_command_prints_step_table_and_totals(self, capsys):
        code = main(["crash", "--ftl", "LazyFTL", "--writes", "600",
                     "--crash-after", "300", "--cache-entries", "32"]
                    + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "Crash of LazyFTL after 300 ops" in output
        assert "step3_full_scan" in output
        assert "Recovery totals and post-recovery impact" in output
        assert "wa_delta" in output

    def test_crash_command_gecko_phase_gc(self, capsys):
        code = main(["crash", "--ftl", "GeckoFTL", "--writes", "600",
                     "--crash-after", "100", "--phase", "gc",
                     "--cache-entries", "32"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "phase=gc, fired=yes" in output
        assert "step6_dirty_entries" in output

    def test_crash_command_no_recover(self, capsys):
        code = main(["crash", "--writes", "400", "--crash-after", "200",
                     "--no-recover", "--cache-entries", "32"] + self.TINY)
        assert code == 0
        assert "recovery skipped" in capsys.readouterr().out

    def test_sweep_crash_flag_produces_recovery_columns(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL,DFTL cache=32",
                     "--writes", "400", "--interval-writes", "200",
                     "--crash", "after_ops=200,phase=ops"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "recovery_spare=" in output
        assert "recovery.total_spare_reads" in output
        assert "wa_delta" in output

    def test_sweep_crash_rows_persist_recovery(self, tmp_path):
        sink = tmp_path / "rows.jsonl"
        code = main(["sweep", "--grid", "ftl=LazyFTL cache=32",
                     "--writes", "400", "--interval-writes", "200",
                     "--crash", "200", "--sink", str(sink)] + self.TINY)
        assert code == 0
        row = json.loads(sink.read_text().splitlines()[0])
        assert row["crash"]["after_ops"] == 200
        assert row["recovery"]["total_spare_reads"] > 0
        assert row["recovery"]["total_page_writes"] >= 0

    def test_malformed_crash_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--grid", "ftl=GeckoFTL", "--crash",
                 "after_ops=1,phase=nope"])

    def test_crash_command_invalid_workload_is_a_usage_error(self, capsys):
        code = main(["crash", "--workload", "NopeWorkload",
                     "--writes", "100"] + self.TINY)
        assert code == 2
        assert "invalid crash scenario" in capsys.readouterr().err

    def test_crash_command_negative_crash_after_is_a_usage_error(self, capsys):
        code = main(["crash", "--writes", "100", "--crash-after", "-5"]
                    + self.TINY)
        assert code == 2
        assert "invalid crash scenario" in capsys.readouterr().err

    def test_plan_file_sweep_honors_crash_flag(self, tmp_path, capsys):
        plan = {"ftls": ["GeckoFTL"],
                "devices": [{"num_blocks": 64, "pages_per_block": 8,
                             "page_size": 256}],
                "cache_capacities": [32], "seeds": [1],
                "write_operations": 400, "interval_writes": 200}
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        code = main(["sweep", "--plan", str(plan_path),
                     "--crash", "after_ops=200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "recovery_spare=" in output
        assert "recovery.total_spare_reads" in output
