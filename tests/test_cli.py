"""Tests for the command-line interface."""

import json

import pytest

from repro.api import FTLSpec
from repro.cli import build_parser, main
from repro.workloads import Operation, OpKind, record_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        arguments = build_parser().parse_args(["compare"])
        assert arguments.ftls == ["GeckoFTL", "uFTL"]
        assert arguments.writes == 4000

    def test_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--ftls", "NopeFTL"])

    def test_ftl_arguments_parse_into_specs(self):
        arguments = build_parser().parse_args(
            ["compare", "--ftls", "GeckoFTL(cache_capacity=64)", "uftl"])
        assert arguments.ftls == [
            FTLSpec("GeckoFTL", {"cache_capacity": 64}), FTLSpec("uFTL")]

    def test_malformed_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--ftls", "GeckoFTL(cache_capacity="])

    def test_replay_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "trace.txt", "--ftl",
                                       "NopeFTL"])


class TestCommands:
    """Drive main() for every subcommand: exit code 0 + expected headers."""

    def test_ram_command_prints_all_ftls(self, capsys):
        assert main(["ram", "--capacity-gb", "2048"]) == 0
        output = capsys.readouterr().out
        assert "Integrated-RAM breakdown at 2048.0 GB (analytical)" in output
        for name in ("DFTL", "LazyFTL", "uFTL", "IB-FTL", "GeckoFTL"):
            assert name in output

    def test_recovery_command_prints_battery_column(self, capsys):
        assert main(["recovery", "--capacity-gb", "512"]) == 0
        output = capsys.readouterr().out
        assert "Recovery-time breakdown at 512.0 GB (analytical)" in output
        assert "battery" in output
        assert "GeckoFTL" in output

    def test_compare_command_small_run(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL", "--writes", "500",
                     "--blocks", "64", "--pages-per-block", "8",
                     "--page-size", "256", "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Write-amplification after 500 random updates" in output
        assert "GeckoFTL" in output
        assert "wa_total" in output

    def test_compare_command_accepts_spec_strings(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL(cache_capacity=32)",
                     "DFTL", "--writes", "400", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "GeckoFTL" in output
        assert "DFTL" in output

    def test_replay_command(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        operations = [Operation(OpKind.WRITE, i % 50) for i in range(300)]
        record_trace(operations, trace)
        code = main(["replay", str(trace), "--ftl", "GeckoFTL",
                     "--writes", "300", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert f"Replay of {trace} against GeckoFTL" in output
        assert "write_amplification" in output
        assert "host_writes" in output

    def test_replay_command_accepts_msr_format(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        with trace.open("w") as handle:
            for index in range(200):
                handle.write(f"{index},host,0,Write,"
                             f"{(index % 50) * 4096},4096,100\n")
        code = main(["replay", str(trace), "--format", "msr", "--wrap",
                     "--writes", "300", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "write_amplification" in output


class TestIngestCommand:
    """repro ingest: validate / --stat / --convert over trace files."""

    @pytest.fixture
    def msr_trace(self, tmp_path):
        trace = tmp_path / "trace.csv"
        # 3 records; the 8 KB write at byte 4096 windows onto 2 pages.
        trace.write_text("1,host,0,Write,4096,8192,100\n"
                         "2,host,0,Read,0,4096,100\n"
                         "3,host,0,Write,40960,4096,100\n")
        return trace

    def test_validate_default_counts_records_and_ops(self, msr_trace,
                                                     capsys):
        assert main(["ingest", str(msr_trace), "--format", "msr"]) == 0
        output = capsys.readouterr().out
        assert "Validated 1 trace(s) (msr)" in output
        assert "records" in output and "ops" in output

    def test_stat_prints_histogram_and_footprint(self, msr_trace, capsys):
        assert main(["ingest", str(msr_trace), "--format", "msr",
                     "--stat"]) == 0
        output = capsys.readouterr().out
        assert "Trace statistics (msr, lpn_scale=4096)" in output
        for column in ("writes", "reads", "trims", "footprint_pages",
                       "offset_range"):
            assert column in output

    def test_stat_on_several_files_prints_the_tenant_split(self, msr_trace,
                                                           tmp_path, capsys):
        other = tmp_path / "other.csv"
        other.write_text("1,host,0,Write,0,4096,100\n")
        assert main(["ingest", str(msr_trace), str(other),
                     "--format", "msr", "--stat"]) == 0
        output = capsys.readouterr().out
        assert "Tenant split (by windowed ops)" in output
        assert "t0" in output and "t1" in output
        assert "80.0%" in output and "20.0%" in output

    def test_convert_writes_a_native_trace(self, msr_trace, tmp_path,
                                           capsys):
        out = tmp_path / "native.txt"
        assert main(["ingest", str(msr_trace), "--format", "msr",
                     "--convert", str(out)]) == 0
        assert out.read_text().splitlines() == [
            "W 1", "W 2", "R 0", "W 10"]
        assert "wrote 4 native op(s)" in capsys.readouterr().out

    def test_malformed_trace_fails_with_line_number(self, tmp_path, capsys):
        trace = tmp_path / "bad.csv"
        trace.write_text("1,host,0,Write,0,4096,100\ngarbage\n")
        assert main(["ingest", str(trace), "--format", "msr"]) == 2
        error = capsys.readouterr().err
        assert "invalid trace" in error and ":2:" in error

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "nope.csv")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestSweepCommand:
    """The `repro sweep` subcommand: grids, plan files, sinks, resume."""

    TINY = ["--blocks", "64", "--pages-per-block", "8", "--page-size", "256",
            "--writes", "400", "--interval-writes", "200"]

    def test_requires_grid_or_plan(self, capsys):
        assert main(["sweep"] + self.TINY) == 2
        assert "needs --grid or --plan" in capsys.readouterr().err

    def test_grid_sweep_prints_progress_and_summary(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL,DFTL cache=32",
                     "--workers", "1"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "[1/2]" in output and "[2/2]" in output
        assert "Sweep of 2 tasks" in output
        assert "executed=2 skipped=0" in output
        assert "GeckoFTL" in output and "DFTL" in output

    def test_invalid_grid_is_a_usage_error(self, capsys):
        assert main(["sweep", "--grid", "cheese=1"] + self.TINY) == 2
        assert "invalid sweep plan" in capsys.readouterr().err

    def test_resume_without_store_is_a_usage_error(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--resume"] + self.TINY)
        assert code == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_workers_and_backend_conflict(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--workers", "2", "--backend", "serial"] + self.TINY)
        assert code == 2
        assert "--workers is deprecated" in capsys.readouterr().err

    def test_invalid_backend_is_a_usage_error(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--backend", "cheese"] + self.TINY)
        assert code == 2
        assert "invalid execution backend" in capsys.readouterr().err

    def test_plan_file_sweep(self, tmp_path, capsys):
        plan = {"ftls": ["GeckoFTL"],
                "devices": [{"num_blocks": 64, "pages_per_block": 8,
                             "page_size": 256}],
                "cache_capacities": [32], "seeds": [1],
                "write_operations": 300, "interval_writes": 150}
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        assert main(["sweep", "--plan", str(plan_path)]) == 0
        output = capsys.readouterr().out
        assert "Sweep of 1 tasks" in output

    def test_invalid_plan_file_is_a_usage_error(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"cheese": 1}))
        assert main(["sweep", "--plan", str(plan_path)]) == 2
        assert "invalid sweep plan" in capsys.readouterr().err

    def test_store_and_resume_skip_completed_tasks(self, tmp_path, capsys):
        store = tmp_path / "rows.jsonl"
        arguments = ["sweep", "--grid", "ftl=GeckoFTL cache=32,48",
                     "--store", str(store)] + self.TINY
        assert main(arguments) == 0
        assert "executed=2 skipped=0" in capsys.readouterr().out
        assert len(store.read_text().splitlines()) == 2

        assert main(arguments + ["--resume"]) == 0
        assert "executed=0 skipped=2" in capsys.readouterr().out
        assert len(store.read_text().splitlines()) == 2

    def test_sink_flag_is_an_alias_for_store(self, tmp_path, capsys):
        store = tmp_path / "rows.jsonl"
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--sink", str(store)] + self.TINY)
        assert code == 0
        assert len(store.read_text().splitlines()) == 1

    def test_sqlite_store_and_resume(self, tmp_path, capsys):
        store = tmp_path / "rows.sqlite"
        arguments = ["sweep", "--grid", "ftl=GeckoFTL cache=32,48",
                     "--store", str(store)] + self.TINY
        assert main(arguments) == 0
        assert "executed=2 skipped=0" in capsys.readouterr().out
        assert main(arguments + ["--resume"]) == 0
        assert "executed=0 skipped=2" in capsys.readouterr().out
        from repro.engine import open_store
        with open_store(store) as reopened:
            assert len(reopened.rows()) == 2

    def test_shard_workers_then_merge(self, tmp_path, capsys):
        store = tmp_path / "rows.jsonl"
        base = ["sweep", "--grid", "ftl=GeckoFTL,DFTL cache=32 seed=1,2",
                "--store", str(store)] + self.TINY
        assert main(base + ["--shard", "0/2"]) == 0
        assert main(base + ["--shard", "1/2"]) == 0
        # Workers fill only their sub-stores; the merge writes the store.
        assert not store.exists()
        capsys.readouterr()
        assert main(base + ["--backend", "shard(hosts=2)"]) == 0
        out = capsys.readouterr().out
        assert "executed=4 skipped=0" in out
        rows = [json.loads(line)
                for line in store.read_text().splitlines()]
        assert [row["index"] for row in rows] == [0, 1, 2, 3]

    def test_shard_requires_store(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL cache=32",
                     "--shard", "0/2"] + self.TINY)
        assert code == 2
        assert "--shard needs --store" in capsys.readouterr().err

    def test_group_by_device_field(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL ratio=0.5,0.7",
                     "--cache-entries", "32",
                     "--group-by", "device.logical_ratio"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "device.logical_ratio" in output
        assert "0.5" in output and "0.7" in output


class TestCrashCli:
    """The `repro crash` subcommand and `repro sweep --crash`."""

    TINY = ["--blocks", "64", "--pages-per-block", "8", "--page-size", "256"]

    def test_crash_command_prints_step_table_and_totals(self, capsys):
        code = main(["crash", "--ftl", "LazyFTL", "--writes", "600",
                     "--crash-after", "300", "--cache-entries", "32"]
                    + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "Crash of LazyFTL after 300 ops" in output
        assert "step3_full_scan" in output
        assert "Recovery totals and post-recovery impact" in output
        assert "wa_delta" in output

    def test_crash_command_gecko_phase_gc(self, capsys):
        code = main(["crash", "--ftl", "GeckoFTL", "--writes", "600",
                     "--crash-after", "100", "--phase", "gc",
                     "--cache-entries", "32"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "phase=gc, fired=yes" in output
        assert "step6_dirty_entries" in output

    def test_crash_command_no_recover(self, capsys):
        code = main(["crash", "--writes", "400", "--crash-after", "200",
                     "--no-recover", "--cache-entries", "32"] + self.TINY)
        assert code == 0
        assert "recovery skipped" in capsys.readouterr().out

    def test_sweep_crash_flag_produces_recovery_columns(self, capsys):
        code = main(["sweep", "--grid", "ftl=GeckoFTL,DFTL cache=32",
                     "--writes", "400", "--interval-writes", "200",
                     "--crash", "after_ops=200,phase=ops"] + self.TINY)
        assert code == 0
        output = capsys.readouterr().out
        assert "recovery_spare=" in output
        assert "recovery.total_spare_reads" in output
        assert "wa_delta" in output

    def test_sweep_crash_rows_persist_recovery(self, tmp_path):
        sink = tmp_path / "rows.jsonl"
        code = main(["sweep", "--grid", "ftl=LazyFTL cache=32",
                     "--writes", "400", "--interval-writes", "200",
                     "--crash", "200", "--store", str(sink)] + self.TINY)
        assert code == 0
        row = json.loads(sink.read_text().splitlines()[0])
        assert row["crash"]["after_ops"] == 200
        assert row["recovery"]["total_spare_reads"] > 0
        assert row["recovery"]["total_page_writes"] >= 0

    def test_malformed_crash_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--grid", "ftl=GeckoFTL", "--crash",
                 "after_ops=1,phase=nope"])

    def test_crash_command_invalid_workload_is_a_usage_error(self, capsys):
        code = main(["crash", "--workload", "NopeWorkload",
                     "--writes", "100"] + self.TINY)
        assert code == 2
        assert "invalid crash scenario" in capsys.readouterr().err

    def test_crash_command_negative_crash_after_is_a_usage_error(self, capsys):
        code = main(["crash", "--writes", "100", "--crash-after", "-5"]
                    + self.TINY)
        assert code == 2
        assert "invalid crash scenario" in capsys.readouterr().err

    def test_plan_file_sweep_honors_crash_flag(self, tmp_path, capsys):
        plan = {"ftls": ["GeckoFTL"],
                "devices": [{"num_blocks": 64, "pages_per_block": 8,
                             "page_size": 256}],
                "cache_capacities": [32], "seeds": [1],
                "write_operations": 400, "interval_writes": 200}
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        code = main(["sweep", "--plan", str(plan_path),
                     "--crash", "after_ops=200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "recovery_spare=" in output
        assert "recovery.total_spare_reads" in output


class TestQueryCommand:
    """The `repro query` subcommand: aggregates, quantiles, rows, export."""

    @staticmethod
    def _populate(path, rows=120):
        from repro.engine import open_store
        with open_store(path) as store:
            for index in range(rows):
                ftl = ("GeckoFTL", "DFTL", "LazyFTL")[index % 3]
                store.append({"key": f"{index:016x}", "ftl": ftl,
                              "seed": index, "wa_total": 1.0 + index % 7,
                              "ram_bytes": 1000 + index})
        return path

    @staticmethod
    def _body(lines):
        """Table rows only: drop the title and '===' ruler lines."""
        return [line for line in lines
                if line.strip() and set(line.strip()) != {"="}
                and "rows." not in line]

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "absent.sqlite")]) == 2
        assert "no such result store" in capsys.readouterr().err

    def test_grouped_aggregate_never_materializes_rows(self, tmp_path,
                                                       capsys, monkeypatch):
        # The ISSUE's acceptance bar: a grouped WA-by-FTL question over a
        # >=100-row sweep answered in SQL. Poisoning rows() proves no
        # Python row loading happens on the SQLite path.
        from repro.engine import SqliteResultStore
        store = self._populate(tmp_path / "rows.sqlite")
        monkeypatch.setattr(
            SqliteResultStore, "rows",
            lambda self: (_ for _ in ()).throw(
                AssertionError("rows() materialized in Python")))
        code = main(["query", str(store), "--by", "ftl",
                     "--metrics", "wa_total"])
        assert code == 0
        output = capsys.readouterr().out
        assert "GeckoFTL" in output and "wa_total_mean" in output

    def test_aggregate_matches_python_on_jsonl(self, tmp_path, capsys):
        sqlite_store = self._populate(tmp_path / "rows.sqlite")
        jsonl_store = self._populate(tmp_path / "rows.jsonl")
        assert main(["query", str(sqlite_store), "--metrics",
                     "wa_total"]) == 0
        from_sqlite = capsys.readouterr().out.splitlines()
        assert main(["query", str(jsonl_store), "--metrics",
                     "wa_total"]) == 0
        from_jsonl = capsys.readouterr().out.splitlines()
        # Same table body (title/ruler lines name the different paths).
        assert self._body(from_sqlite) == self._body(from_jsonl)

    def test_where_filters(self, tmp_path, capsys):
        store = self._populate(tmp_path / "rows.sqlite")
        assert main(["query", str(store), "--where", "ftl=DFTL",
                     "--metrics", "wa_total"]) == 0
        output = capsys.readouterr().out
        assert "DFTL" in output and "GeckoFTL" not in output

    def test_select_prints_jsonl_rows(self, tmp_path, capsys):
        store = self._populate(tmp_path / "rows.sqlite")
        assert main(["query", str(store), "--select", "ftl", "wa_total",
                     "--order-by=-wa_total", "--limit", "3"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 3
        assert all(line["wa_total"] == 7.0 for line in lines)

    def test_quantile_uses_sql_on_sqlite(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.engine import SqliteResultStore
        store = self._populate(tmp_path / "rows.sqlite")
        monkeypatch.setattr(
            SqliteResultStore, "rows",
            lambda self: (_ for _ in ()).throw(
                AssertionError("rows() materialized in Python")))
        assert main(["query", str(store), "--quantile", "0.5",
                     "--metric", "wa_total"]) == 0
        assert "wa_total_p50" in capsys.readouterr().out

    def test_quantile_python_fallback_agrees(self, tmp_path, capsys):
        sqlite_store = self._populate(tmp_path / "rows.sqlite")
        jsonl_store = self._populate(tmp_path / "rows.jsonl")
        assert main(["query", str(sqlite_store), "--quantile", "0.9"]) == 0
        from_sqlite = capsys.readouterr().out.splitlines()
        assert main(["query", str(jsonl_store), "--quantile", "0.9"]) == 0
        from_jsonl = capsys.readouterr().out.splitlines()
        assert self._body(from_sqlite) == self._body(from_jsonl)

    def test_export_round_trips_between_formats(self, tmp_path, capsys):
        source = self._populate(tmp_path / "rows.jsonl", rows=10)
        assert main(["query", str(source), "--export",
                     str(tmp_path / "rows.sqlite")]) == 0
        assert "exported 10 row(s)" in capsys.readouterr().out
        assert main(["query", str(tmp_path / "rows.sqlite"), "--export",
                     str(tmp_path / "back.jsonl")]) == 0
        assert (tmp_path / "back.jsonl").read_bytes() == source.read_bytes()

    def test_bad_field_is_a_usage_error(self, tmp_path, capsys):
        store = self._populate(tmp_path / "rows.sqlite", rows=3)
        assert main(["query", str(store), "--select", "no;such"]) == 2
        assert "query failed" in capsys.readouterr().err
