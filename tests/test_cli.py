"""Tests for the command-line interface."""

import pytest

from repro.api import FTLSpec
from repro.cli import build_parser, main
from repro.workloads import Operation, OpKind, record_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        arguments = build_parser().parse_args(["compare"])
        assert arguments.ftls == ["GeckoFTL", "uFTL"]
        assert arguments.writes == 4000

    def test_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--ftls", "NopeFTL"])

    def test_ftl_arguments_parse_into_specs(self):
        arguments = build_parser().parse_args(
            ["compare", "--ftls", "GeckoFTL(cache_capacity=64)", "uftl"])
        assert arguments.ftls == [
            FTLSpec("GeckoFTL", {"cache_capacity": 64}), FTLSpec("uFTL")]

    def test_malformed_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--ftls", "GeckoFTL(cache_capacity="])

    def test_replay_unknown_ftl_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "trace.txt", "--ftl",
                                       "NopeFTL"])


class TestCommands:
    """Drive main() for every subcommand: exit code 0 + expected headers."""

    def test_ram_command_prints_all_ftls(self, capsys):
        assert main(["ram", "--capacity-gb", "2048"]) == 0
        output = capsys.readouterr().out
        assert "Integrated-RAM breakdown at 2048.0 GB (analytical)" in output
        for name in ("DFTL", "LazyFTL", "uFTL", "IB-FTL", "GeckoFTL"):
            assert name in output

    def test_recovery_command_prints_battery_column(self, capsys):
        assert main(["recovery", "--capacity-gb", "512"]) == 0
        output = capsys.readouterr().out
        assert "Recovery-time breakdown at 512.0 GB (analytical)" in output
        assert "battery" in output
        assert "GeckoFTL" in output

    def test_compare_command_small_run(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL", "--writes", "500",
                     "--blocks", "64", "--pages-per-block", "8",
                     "--page-size", "256", "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Write-amplification after 500 random updates" in output
        assert "GeckoFTL" in output
        assert "wa_total" in output

    def test_compare_command_accepts_spec_strings(self, capsys):
        code = main(["compare", "--ftls", "GeckoFTL(cache_capacity=32)",
                     "DFTL", "--writes", "400", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert "GeckoFTL" in output
        assert "DFTL" in output

    def test_replay_command(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        operations = [Operation(OpKind.WRITE, i % 50) for i in range(300)]
        record_trace(operations, trace)
        code = main(["replay", str(trace), "--ftl", "GeckoFTL",
                     "--writes", "300", "--blocks", "64",
                     "--pages-per-block", "8", "--page-size", "256",
                     "--cache-entries", "64"])
        assert code == 0
        output = capsys.readouterr().out
        assert f"Replay of {trace} against GeckoFTL" in output
        assert "write_amplification" in output
        assert "host_writes" in output
