"""Tests for the per-FTL crash/recovery adapters (repro.ftl.recovery)."""

import random

import pytest

from repro.api import SimulationSession, ftl_names
from repro.core.recovery import GeckoRecovery
from repro.flash.config import simulation_configuration
from repro.ftl.recovery import (BatteryRecovery, FullScanRecovery,
                                RecoveryReport, RecoveryStep)

ALL_FTLS = ftl_names()


def tiny_config(num_blocks=96):
    return simulation_configuration(num_blocks=num_blocks, pages_per_block=16,
                                    page_size=256)


def busy_session(spec, num_blocks=96, updates=2500, seed=11):
    session = SimulationSession(spec, device=tiny_config(num_blocks),
                                ftl_kwargs={"cache_capacity": 96})
    session.warmup()
    shadow = {logical: ("init", logical)
              for logical in range(session.config.logical_pages)}
    rng = random.Random(seed)
    for i in range(updates):
        logical = rng.randrange(session.config.logical_pages)
        payload = ("v", logical, i)
        session.write(logical, payload)
        shadow[logical] = payload
    return session, shadow


class TestReportAggregates:
    def test_total_page_writes_sums_steps(self):
        report = RecoveryReport(steps=[
            RecoveryStep("a", page_reads=1, page_writes=2, spare_reads=3),
            RecoveryStep("b", page_reads=4, page_writes=5, spare_reads=6),
        ])
        assert report.total_page_reads == 5
        assert report.total_page_writes == 7
        assert report.total_spare_reads == 9

    def test_as_dict_carries_all_four_totals(self):
        report = RecoveryReport(steps=[
            RecoveryStep("a", page_reads=1, page_writes=2, spare_reads=3,
                         duration_us=10.0)])
        data = report.as_dict()
        assert data["total_page_reads"] == 1
        assert data["total_page_writes"] == 2
        assert data["total_spare_reads"] == 3
        assert data["total_duration_us"] == 10.0
        assert data["steps"][0]["page_writes"] == 2


class TestAdapterDispatch:
    def test_every_registered_ftl_has_an_adapter(self):
        for name in ALL_FTLS:
            session = SimulationSession(name, device=tiny_config(),
                                        ftl_kwargs={"cache_capacity": 64})
            adapter = session.ftl.make_recovery()
            if name == "GeckoFTL":
                assert isinstance(adapter, GeckoRecovery)
            elif session.ftl.uses_battery:
                assert isinstance(adapter, BatteryRecovery)
            else:
                assert isinstance(adapter, FullScanRecovery)

    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_crash_and_recover_never_raises_for_registry_ftls(self, name):
        session, shadow = busy_session(name, updates=600)
        session.crash()
        report = session.recover()
        assert isinstance(report, RecoveryReport)
        assert report.total_duration_us >= 0


class TestFullScanRecovery:
    @pytest.mark.parametrize("spec", ["LazyFTL", "IB-FTL"])
    def test_all_written_data_is_readable_after_recovery(self, spec):
        session, shadow = busy_session(spec)
        session.crash()
        session.recover()
        mismatches = [logical for logical, payload in shadow.items()
                      if session.read(logical) != payload]
        assert mismatches == []

    @pytest.mark.parametrize("spec", ["LazyFTL", "IB-FTL"])
    def test_operation_continues_after_recovery(self, spec):
        session, shadow = busy_session(spec)
        session.crash()
        session.recover()
        rng = random.Random(77)
        for i in range(1200):
            logical = rng.randrange(session.config.logical_pages)
            session.write(logical, ("post", logical, i))
            shadow[logical] = ("post", logical, i)
        mismatches = [logical for logical, payload in shadow.items()
                      if session.read(logical) != payload]
        assert mismatches == []

    def test_scan_cost_scales_with_device_size(self):
        small, _ = busy_session("LazyFTL", num_blocks=64, updates=1500)
        large, _ = busy_session("LazyFTL", num_blocks=256, updates=1500)
        small.crash()
        large.crash()
        small_report = small.recover()
        large_report = large.recover()
        # 4x the blocks (and roughly 4x the written pages) must cost
        # substantially more spare reads; GeckoRec's bound is tested below.
        assert large_report.total_spare_reads \
            > 2 * small_report.total_spare_reads

    def test_geckorec_is_bounded_by_blocks_plus_cache(self):
        small, _ = busy_session("GeckoFTL", num_blocks=64, updates=1500)
        large, _ = busy_session("GeckoFTL", num_blocks=256, updates=1500)
        for session in (small, large):
            session.crash()
        for session, config in ((small, 64), (large, 256)):
            report = session.recover()
            capacity = session.ftl.cache.capacity
            pages_per_block = session.config.pages_per_block
            # BID: one spare read per block. Gecko/translation directories:
            # bounded by the metadata footprint. Dirty entries: 2C plus one
            # block of slack. The whole thing must stay far below a full
            # device scan.
            budget = (session.config.num_blocks      # BID
                      + 2 * capacity + pages_per_block  # dirty-entry scan
                      + 6 * pages_per_block * 4)     # metadata block scans
            assert report.total_spare_reads < budget
            assert report.total_spare_reads \
                < session.config.physical_pages // 2

    def test_repeated_crash_cycles_preserve_data(self):
        session, shadow = busy_session("IB-FTL", updates=1200)
        rng = random.Random(5)
        for cycle in range(3):
            session.crash()
            session.recover()
            for i in range(400):
                logical = rng.randrange(session.config.logical_pages)
                session.write(logical, ("c", cycle, i))
                shadow[logical] = ("c", cycle, i)
            mismatches = [logical for logical, payload in shadow.items()
                          if session.read(logical) != payload]
            assert mismatches == [], f"data lost in crash cycle {cycle}"

    def test_report_has_scan_steps(self):
        session, _shadow = busy_session("LazyFTL", updates=800)
        session.crash()
        report = session.recover()
        assert [step.name for step in report.steps] == [
            "step1_bid", "step2_gmd", "step3_full_scan",
            "step4_translation_sync", "step5_validity_rebuild", "step6_bvc"]
        # The BVC rebuild is pure RAM.
        assert report.steps[-1].spare_reads == 0
        assert report.steps[-1].page_reads == 0

    def test_bvc_matches_validity_store_after_recovery(self):
        session, _shadow = busy_session("LazyFTL", updates=1500)
        session.crash()
        session.recover()
        ftl = session.ftl
        for block_id in range(session.config.num_blocks):
            if ftl.block_manager.block_type(block_id).value != "user":
                continue
            written = session.device.block(block_id).written_pages
            invalid = len(ftl.validity_store.invalid_offsets(block_id))
            assert ftl.bvc.valid_count(block_id) == written - invalid


class TestFullScanOnFlashPVB:
    """The advertised generic path: FullScanRecovery on a FlashPVB FTL.

    µ-FTL itself is battery-backed, but FullScanRecovery documents support
    for any page-mapped FTL — including one whose validity store lives in
    flash. The nasty case is a collection interrupted between migration and
    erase: the victim's migrated-away copies were never mark_invalid'ed, so
    the flash-resident bitmap is missing their bits and only the scan can
    restore them.
    """

    def _crash_mid_gc(self):
        from repro.engine.crash import SimulatedPowerFailure
        from repro.ftl.recovery import FullScanRecovery

        session, shadow = busy_session("uFTL", updates=0)

        def hook(point, victim):
            raise SimulatedPowerFailure(point, victim)

        session.ftl.garbage_collector.crash_hook = hook
        rng = random.Random(23)
        interrupted = False
        for i in range(4000):
            logical = rng.randrange(session.config.logical_pages)
            payload = ("g", logical, i)
            try:
                session.write(logical, payload)
            except SimulatedPowerFailure:
                interrupted = True
                break
            shadow[logical] = payload
        assert interrupted, "workload never triggered a collection"
        session.ftl.garbage_collector.crash_hook = None
        adapter = FullScanRecovery(session.ftl)
        adapter.simulate_power_failure()
        report = adapter.recover()
        return session, shadow, report

    def test_scan_restores_bits_the_interrupted_gc_lost(self):
        session, shadow, _report = self._crash_mid_gc()
        ftl = session.ftl
        # The validity store must agree with the scan's ground truth:
        # every non-newest copy is invalid, so BVC and PVB line up.
        for block_id in range(session.config.num_blocks):
            if ftl.block_manager.block_type(block_id).value != "user":
                continue
            written = session.device.block(block_id).written_pages
            invalid = len(ftl.validity_store.invalid_offsets(block_id))
            assert ftl.bvc.valid_count(block_id) == written - invalid
        # And continued operation (incl. GC of the un-erased victim) never
        # migrates a stale copy over a newer mapping.
        rng = random.Random(29)
        for i in range(1500):
            logical = rng.randrange(session.config.logical_pages)
            ftl.write(logical, ("post", logical, i))
            shadow[logical] = ("post", logical, i)
        mismatches = [logical for logical, payload in shadow.items()
                      if ftl.read(logical) != payload]
        assert mismatches == []


class TestBatteryRecovery:
    @pytest.mark.parametrize("spec", ["DFTL", "uFTL"])
    def test_battery_flush_then_report(self, spec):
        session, shadow = busy_session(spec, updates=1200)
        session.crash()
        assert session.ftl.cache.dirty_count == 0
        report = session.recover()
        assert [step.name for step in report.steps] == ["battery_flush"]
        assert report.total_duration_us > 0
        mismatches = [logical for logical, payload in shadow.items()
                      if session.read(logical) != payload]
        assert mismatches == []

    def test_battery_flush_costs_no_spare_reads(self):
        session, _shadow = busy_session("DFTL", updates=800)
        session.crash()
        report = session.recover()
        assert report.total_spare_reads == 0
