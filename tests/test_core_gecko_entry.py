"""Unit tests for Gecko entries, entry-partitioning, and collision merging."""

import pytest

from repro.core.gecko_entry import (
    KEY_BITS,
    EntryLayout,
    GeckoEntry,
    merge_collision,
    merge_entry_lists,
    strip_obsolete_in_largest_run,
)


class TestEntryLayout:
    def test_unpartitioned_entry_covers_the_whole_block(self):
        layout = EntryLayout(pages_per_block=128, page_size=4096)
        assert layout.bits_per_slice == 128
        assert layout.subkey_bits == 0

    def test_partitioned_entry_covers_a_slice(self):
        layout = EntryLayout(pages_per_block=128, page_size=4096,
                             partition_factor=4)
        assert layout.bits_per_slice == 32
        assert layout.subkey_bits == 2

    def test_entries_per_page_grows_with_partitioning(self):
        whole = EntryLayout(pages_per_block=512, page_size=4096)
        partitioned = EntryLayout(pages_per_block=512, page_size=4096,
                                  partition_factor=16)
        assert partitioned.entries_per_page > whole.entries_per_page

    def test_recommended_factor_is_b_over_key(self):
        layout = EntryLayout.recommended(pages_per_block=128, page_size=4096)
        assert layout.partition_factor == 128 // KEY_BITS

    def test_recommended_factor_divides_block_size(self):
        layout = EntryLayout.recommended(pages_per_block=48, page_size=4096)
        assert 48 % layout.partition_factor == 0

    def test_recommended_never_exceeds_block_size(self):
        layout = EntryLayout.recommended(pages_per_block=16, page_size=4096)
        assert 1 <= layout.partition_factor <= 16

    def test_factor_must_divide_block_size(self):
        with pytest.raises(ValueError):
            EntryLayout(pages_per_block=10, page_size=512, partition_factor=3)

    def test_factor_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            EntryLayout(pages_per_block=8, page_size=512, partition_factor=0)

    def test_factor_cannot_exceed_block_size(self):
        with pytest.raises(ValueError):
            EntryLayout(pages_per_block=8, page_size=512, partition_factor=16)

    def test_entries_per_page_is_at_least_one(self):
        layout = EntryLayout(pages_per_block=4096, page_size=64)
        assert layout.entries_per_page >= 1


class TestGeckoEntry:
    def test_offsets_unpartitioned(self):
        layout = EntryLayout(pages_per_block=8, page_size=512)
        entry = GeckoEntry(block_id=1, bitmap=0b1010)
        assert entry.offsets(layout) == [1, 3]

    def test_offsets_with_subkey(self):
        layout = EntryLayout(pages_per_block=8, page_size=512,
                             partition_factor=2)
        entry = GeckoEntry(block_id=1, sub_key=1, bitmap=0b0011)
        assert entry.offsets(layout) == [4, 5]

    def test_sort_key_orders_by_block_then_subkey(self):
        a = GeckoEntry(block_id=1, sub_key=1)
        b = GeckoEntry(block_id=2, sub_key=0)
        assert a.sort_key < b.sort_key

    def test_copy_is_independent(self):
        entry = GeckoEntry(block_id=1, bitmap=0b1)
        copy = entry.copy()
        copy.bitmap = 0b10
        assert entry.bitmap == 0b1


class TestMergeCollision:
    def test_newer_erase_flag_discards_older(self):
        newer = GeckoEntry(1, bitmap=0, erase_flag=True)
        older = GeckoEntry(1, bitmap=0b111)
        merged = merge_collision(newer, older)
        assert merged.erase_flag
        assert merged.bitmap == 0

    def test_bitmaps_are_ored(self):
        newer = GeckoEntry(1, bitmap=0b001)
        older = GeckoEntry(1, bitmap=0b100)
        assert merge_collision(newer, older).bitmap == 0b101

    def test_older_erase_flag_is_preserved(self):
        newer = GeckoEntry(1, bitmap=0b1)
        older = GeckoEntry(1, bitmap=0b10, erase_flag=True)
        merged = merge_collision(newer, older)
        assert merged.erase_flag
        assert merged.bitmap == 0b11

    def test_mismatched_keys_are_rejected(self):
        with pytest.raises(ValueError):
            merge_collision(GeckoEntry(1), GeckoEntry(2))


class TestMergeEntryLists:
    def test_merge_preserves_sort_order(self):
        newer = [GeckoEntry(1, bitmap=1), GeckoEntry(5, bitmap=1)]
        older = [GeckoEntry(2, bitmap=1), GeckoEntry(4, bitmap=1)]
        merged = merge_entry_lists(newer, older)
        keys = [entry.block_id for entry in merged]
        assert keys == sorted(keys)

    def test_collisions_are_resolved(self):
        newer = [GeckoEntry(3, bitmap=0b01)]
        older = [GeckoEntry(3, bitmap=0b10)]
        merged = merge_entry_lists(newer, older)
        assert len(merged) == 1
        assert merged[0].bitmap == 0b11

    def test_block_level_erase_shadows_all_subkeys(self):
        newer = [GeckoEntry(3, sub_key=0, erase_flag=True)]
        older = [GeckoEntry(3, sub_key=0, bitmap=0b1),
                 GeckoEntry(3, sub_key=2, bitmap=0b1)]
        merged = merge_entry_lists(newer, older)
        assert len(merged) == 1
        assert merged[0].erase_flag

    def test_non_colliding_entries_survive(self):
        newer = [GeckoEntry(1, bitmap=0b1)]
        older = [GeckoEntry(9, bitmap=0b1)]
        merged = merge_entry_lists(newer, older)
        assert {entry.block_id for entry in merged} == {1, 9}

    def test_empty_inputs(self):
        assert merge_entry_lists([], []) == []
        only = merge_entry_lists([GeckoEntry(1, bitmap=1)], [])
        assert len(only) == 1


class TestStripObsolete:
    def test_erase_flags_are_cleared(self):
        entries = [GeckoEntry(1, bitmap=0b1, erase_flag=True)]
        stripped = strip_obsolete_in_largest_run(entries)
        assert len(stripped) == 1
        assert not stripped[0].erase_flag

    def test_empty_entries_are_dropped(self):
        entries = [GeckoEntry(1, bitmap=0, erase_flag=True),
                   GeckoEntry(2, bitmap=0b1)]
        stripped = strip_obsolete_in_largest_run(entries)
        assert [entry.block_id for entry in stripped] == [2]
