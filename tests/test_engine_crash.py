"""Tests for crash schedules in the sweep engine (repro.engine.crash)."""

import pytest

from repro.engine import (
    CrashPlan,
    ResultSink,
    SweepPlan,
    SweepTask,
    canonical_row_bytes,
    execute_task,
    run_sweep,
)

TINY_DEVICE = {"num_blocks": 64, "pages_per_block": 8, "page_size": 256}


def crash_task(ftl="GeckoFTL", crash=None, writes=1200, **overrides):
    options = {"ftl": ftl, "workload": "UniformRandomWrites",
               "device": TINY_DEVICE, "cache_capacity": 64, "seed": 9,
               "write_operations": writes, "interval_writes": 400,
               "crash": crash}
    options.update(overrides)
    return SweepTask(**options)


class TestCrashPlan:
    def test_defaults_and_validation(self):
        plan = CrashPlan(after_ops=100)
        assert plan.phase == "ops" and plan.recover is True
        with pytest.raises(ValueError, match="after_ops"):
            CrashPlan(after_ops=-1)
        with pytest.raises(ValueError, match="phase"):
            CrashPlan(after_ops=1, phase="nope")

    def test_parse_shorthand(self):
        plan = CrashPlan.parse("after_ops=2000,phase=gc,recover=false")
        assert plan == CrashPlan(after_ops=2000, phase="gc", recover=False)
        assert CrashPlan.parse("1500") == CrashPlan(after_ops=1500)
        with pytest.raises(ValueError, match="after_ops"):
            CrashPlan.parse("phase=gc")
        with pytest.raises(ValueError, match="unknown crash spec key"):
            CrashPlan.parse("after_ops=1,bogus=2")

    def test_dict_round_trip_and_coercion(self):
        plan = CrashPlan(after_ops=5, phase="merge", recover=False)
        assert CrashPlan.from_dict(plan.to_dict()) == plan
        assert CrashPlan.of(plan) is plan
        assert CrashPlan.of(42) == CrashPlan(after_ops=42)
        with pytest.raises(ValueError, match="unknown crash-plan key"):
            CrashPlan.from_dict({"after_ops": 1, "what": 2})

    def test_task_normalizes_crash_spec_strings(self):
        task = crash_task(crash="after_ops=600,phase=gc")
        assert task.crash == {"after_ops": 600, "phase": "gc",
                              "recover": True}

    def test_crash_changes_task_key_but_plain_keys_are_stable(self):
        plain = crash_task(crash=None)
        crashed = crash_task(crash={"after_ops": 600})
        assert plain.key() != crashed.key()
        # A task without a crash plan keeps the identity material of older
        # builds, so pre-crash sinks remain resumable.
        assert plain.key() == SweepTask.from_dict(
            {k: v for k, v in plain.to_dict().items()
             if k != "crash"}).key()


class TestCrashExecution:
    def test_row_carries_recovery_totals_and_wa_delta(self):
        row = execute_task(crash_task(crash={"after_ops": 600}))
        recovery = row["recovery"]
        for key in ("total_page_reads", "total_page_writes",
                    "total_spare_reads", "total_duration_us", "steps"):
            assert key in recovery
        assert row["crash"]["ops_completed"] == 600
        assert row["crash"]["phase_fired"] is True
        assert row["crash"]["post_ops"] == 600
        assert row["operations_executed"] == 1200
        assert row["wa_delta"] == pytest.approx(
            row["wa_post_recovery"] - row["wa_pre_crash"], abs=1e-5)

    def test_no_recover_skips_recovery_and_post_ops(self):
        row = execute_task(crash_task(
            crash={"after_ops": 600, "recover": False}))
        assert row["recovery"] is None
        assert row["wa_post_recovery"] is None
        assert row["wa_delta"] is None
        assert row["crash"]["post_ops"] == 0
        assert row["operations_executed"] == 600

    def test_crash_io_attributes_the_battery_flush(self):
        # Even with recover=False, the IO the power-failure event itself
        # costs (the battery-paid flush) is reported, so DFTL's wa_total
        # surplus over a RAM-loss FTL stays explainable from the row.
        battery = execute_task(crash_task(
            ftl="DFTL", crash={"after_ops": 600, "recover": False}))
        ram_loss = execute_task(crash_task(
            ftl="LazyFTL", crash={"after_ops": 600, "recover": False}))
        assert battery["crash"]["crash_io"]["page_writes"] > 0
        assert ram_loss["crash"]["crash_io"] == {
            "page_reads": 0, "page_writes": 0,
            "spare_reads": 0, "block_erases": 0}

    def test_gc_phase_fires_and_interrupts_a_collection(self):
        row = execute_task(crash_task(crash={"after_ops": 200, "phase": "gc"}))
        assert row["crash"]["phase_fired"] is True
        # The crash happened at the first collection at/after the boundary.
        assert row["crash"]["ops_completed"] >= 200
        assert row["recovery"] is not None

    def test_merge_phase_fires_for_gecko(self):
        row = execute_task(crash_task(
            crash={"after_ops": 100, "phase": "merge"}, writes=2000))
        assert row["crash"]["phase_fired"] is True

    def test_merge_phase_never_fires_for_ftls_without_merges(self):
        row = execute_task(crash_task(
            ftl="DFTL", crash={"after_ops": 100, "phase": "merge"},
            writes=600))
        assert row["crash"]["phase_fired"] is False
        # Degenerates to a crash after the last operation.
        assert row["crash"]["ops_completed"] == 600

    def test_crash_past_the_workload_end_degenerates(self):
        row = execute_task(crash_task(crash={"after_ops": 10_000}))
        assert row["crash"]["phase_fired"] is False
        assert row["crash"]["ops_completed"] == 1200
        assert row["wa_post_recovery"] is None

    @pytest.mark.parametrize("ftl", ["GeckoFTL", "LazyFTL", "DFTL"])
    def test_gc_crash_rows_for_other_ftls(self, ftl):
        row = execute_task(crash_task(
            ftl=ftl, crash={"after_ops": 300, "phase": "gc"}))
        assert row["recovery"] is not None
        assert row["recovery"]["total_duration_us"] > 0


class TestCrashSweepDeterminism:
    def test_rows_identical_across_worker_counts(self):
        plan = SweepPlan(
            ftls=["GeckoFTL", "LazyFTL", "DFTL"],
            devices=[TINY_DEVICE], cache_capacities=[64], seeds=[3],
            write_operations=900, interval_writes=300,
            crash={"after_ops": 450, "phase": "gc"})
        serial = run_sweep(plan)
        parallel = run_sweep(plan, backend="pool(workers=4)")
        assert [canonical_row_bytes(row) for row in serial.rows] \
            == [canonical_row_bytes(row) for row in parallel.rows]

    def test_crash_sweep_resume_is_a_noop(self, tmp_path):
        plan = SweepPlan(
            ftls=["GeckoFTL"], devices=[TINY_DEVICE], cache_capacities=[64],
            seeds=[1, 2], write_operations=600, interval_writes=200,
            crash={"after_ops": 300})
        sink_path = tmp_path / "crashes.jsonl"
        first = run_sweep(plan, store=ResultSink(sink_path))
        assert first.executed == 2
        second = run_sweep(plan, store=ResultSink(sink_path),
                           resume=True)
        assert second.executed == 0 and second.skipped == 2
        assert [row["key"] for row in second.rows] \
            == [row["key"] for row in first.rows]


class TestPlanWiring:
    def test_sweep_plan_normalizes_and_round_trips_crash(self):
        plan = SweepPlan(ftls=["GeckoFTL"], devices=[TINY_DEVICE],
                         crash="after_ops=500,phase=merge")
        assert plan.crash == {"after_ops": 500, "phase": "merge",
                              "recover": True}
        assert all(task.crash == plan.crash for task in plan.tasks())
        assert SweepPlan.from_dict(plan.to_dict()).crash == plan.crash

    def test_plain_plan_to_dict_has_no_crash_key(self):
        plan = SweepPlan(ftls=["GeckoFTL"], devices=[TINY_DEVICE])
        assert "crash" not in plan.to_dict()
