"""Equivalence lock: the columnar Gecko reproduces the object-based seed.

The Logarithmic Gecko data plane's object-per-entry model (``GeckoEntry``
dataclasses, per-entry ``copy()``, full-list merges, linear ``gc_query``
scans) was replaced by packed parallel columns; this suite pins the rewrite
to the pre-refactor implementation's observable behavior. The golden file
(``tests/data/gecko_equivalence_golden.json``) was generated *by the
pre-refactor implementation* and must never be regenerated together with a
Gecko data-plane change — it is the ground truth that the columnar core
answers every GC query identically, performs the identical flush/merge
schedule (same storage reads/writes, same merge and rewrite counters), lays
runs out on the identical page boundaries (same per-page key ranges and
manifests), and reports bit-identical ``ram_bytes``.

Covered, per configuration (unpartitioned, partitioned, multiway merge), on
a randomized (seeded) 500-op invalidate/erase trace:

* ``gc_query`` result sets for every block in the key universe;
* update/erase/merge/rewrite counters and storage read/write/live totals;
* the run manifest: every valid run's level, entry count, creation stamp,
  and per-page (min, max) key ranges;
* ``ram_bytes`` and ``reconstruct_bitmaps`` output.

Regenerate (only when *intentionally* changing Gecko semantics) with::

    PYTHONPATH=src python tests/test_gecko_equivalence.py --regen
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.core.gecko_entry import EntryLayout
from repro.core.logarithmic_gecko import GeckoConfig, LogarithmicGecko
from repro.core.storage import InMemoryGeckoStorage

GOLDEN_PATH = Path(__file__).parent / "data" / "gecko_equivalence_golden.json"

TRACE_SEED = 20260730
TRACE_OPS = 500
NUM_BLOCKS = 160

#: The three configurations exercise the unpartitioned fast path, the
#: entry-partitioned layout (sub-keys in the composite key), and the
#: Appendix A multi-way merge.
CONFIGS = {
    "unpartitioned": dict(pages_per_block=8, page_size=128,
                          partition_factor=1, multiway=False),
    "partitioned": dict(pages_per_block=32, page_size=256,
                        partition_factor=4, multiway=False),
    "multiway": dict(pages_per_block=16, page_size=128,
                     partition_factor=2, multiway=True),
}


def _build(pages_per_block, page_size, partition_factor, multiway):
    layout = EntryLayout(pages_per_block=pages_per_block, page_size=page_size,
                         partition_factor=partition_factor)
    config = GeckoConfig(size_ratio=2, layout=layout, multiway_merge=multiway)
    return LogarithmicGecko(config, storage=InMemoryGeckoStorage())


def _drive(gecko, pages_per_block):
    """The randomized 500-op trace: ~90% invalidations, ~10% erases."""
    rng = random.Random(TRACE_SEED)
    for _ in range(TRACE_OPS):
        block = rng.randrange(NUM_BLOCKS)
        if rng.random() < 0.10:
            gecko.record_erase(block)
        else:
            gecko.record_invalid(block, rng.randrange(pages_per_block))


def _run_manifest(gecko):
    """Every valid run's identity, size, and per-page key ranges."""
    manifest = []
    for run in sorted(gecko.runs.all_runs(), key=lambda run: run.run_id):
        manifest.append({
            "run_id": run.run_id,
            "level": run.level,
            "num_entries": run.num_entries,
            "creation_timestamp": run.creation_timestamp,
            "pages": [[list(page.min_key), list(page.max_key)]
                      for page in run.pages],
        })
    return manifest


def _fingerprint(name):
    gecko = _build(**CONFIGS[name])
    _drive(gecko, CONFIGS[name]["pages_per_block"])
    # Counters are captured before the query sweep so the sweep itself
    # (which bumps gc_queries and spends storage reads) stays out of them.
    counters = {
        "updates": gecko.updates,
        "erase_records": gecko.erase_records,
        "merge_operations": gecko.merge_operations,
        "entries_rewritten": gecko.entries_rewritten,
        "storage_reads": gecko.storage.reads,
        "storage_writes": gecko.storage.writes,
        "live_pages": gecko.storage.live_pages,
        "buffered_entries": len(gecko.buffer),
        "num_runs": gecko.num_runs,
        "num_levels": gecko.num_levels,
        "ram_bytes": gecko.ram_bytes(),
    }
    reads_before = gecko.storage.reads
    queries = {str(block): sorted(gecko.gc_query(block))
               for block in range(NUM_BLOCKS)}
    counters["query_sweep_reads"] = gecko.storage.reads - reads_before
    bitmaps = {str(block): sorted(offsets)
               for block, offsets in sorted(gecko.reconstruct_bitmaps().items())}
    return {
        "counters": counters,
        "gc_queries": queries,
        "reconstructed": bitmaps,
        "runs": _run_manifest(gecko),
    }


def compute_fingerprints():
    return {name: _fingerprint(name) for name in CONFIGS}


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_gecko_trace_matches_pre_refactor_golden(name, golden):
    current = _fingerprint(name)
    assert current["counters"] == golden[name]["counters"]
    assert current["gc_queries"] == golden[name]["gc_queries"]
    assert current["reconstructed"] == golden[name]["reconstructed"]
    assert current["runs"] == golden[name]["runs"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("run with --regen to (re)write the golden file; doing so "
                 "together with a Gecko data-plane change defeats the "
                 "test's purpose")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_fingerprints(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
