"""Unit tests for the block manager (layout, allocation, reclamation)."""

import pytest

from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.errors import DeviceFullError
from repro.ftl.block_manager import BlockManager, BlockType


@pytest.fixture
def device():
    return FlashDevice(simulation_configuration(num_blocks=16,
                                                pages_per_block=4,
                                                page_size=256))


@pytest.fixture
def manager(device):
    return BlockManager(device, gc_reserve_blocks=2)


class TestAllocation:
    def test_first_allocation_opens_an_active_block(self, manager):
        address = manager.allocate_page(BlockType.USER)
        assert address.page == 0
        assert manager.block_type(address.block) is BlockType.USER

    def test_allocation_is_append_only(self, manager, device):
        first = manager.allocate_page(BlockType.USER)
        device.write_page(first, "a")
        second = manager.allocate_page(BlockType.USER)
        assert second.block == first.block
        assert second.page == first.page + 1

    def test_full_block_rolls_to_a_new_one(self, manager, device):
        addresses = []
        for i in range(5):
            address = manager.allocate_page(BlockType.USER)
            device.write_page(address, i)
            addresses.append(address)
        assert addresses[4].block != addresses[0].block

    def test_types_use_distinct_active_blocks(self, manager, device):
        user = manager.allocate_page(BlockType.USER)
        translation = manager.allocate_page(BlockType.TRANSLATION)
        validity = manager.allocate_page(BlockType.VALIDITY)
        assert len({user.block, translation.block, validity.block}) == 3

    def test_cannot_allocate_on_free_pool(self, manager):
        with pytest.raises(ValueError):
            manager.allocate_page(BlockType.FREE)

    def test_reserve_blocks_host_user_allocations(self, manager, device):
        # Exhaust the pool down to the reserve with user blocks.
        while manager.free_block_count > manager.gc_reserve_blocks:
            for _ in range(device.config.pages_per_block):
                address = manager.allocate_page(BlockType.USER)
                device.write_page(address, "x")
        with pytest.raises(DeviceFullError):
            for _ in range(device.config.pages_per_block + 1):
                address = manager.allocate_page(BlockType.USER)
                device.write_page(address, "x")

    def test_reserve_is_available_to_gc_migrations(self, manager, device):
        while manager.free_block_count > manager.gc_reserve_blocks:
            for _ in range(device.config.pages_per_block):
                address = manager.allocate_page(BlockType.USER)
                device.write_page(address, "x")
        address = manager.allocate_page(BlockType.USER, use_reserve=True)
        assert manager.block_type(address.block) is BlockType.USER

    def test_reserve_is_available_to_metadata(self, manager, device):
        while manager.free_block_count > manager.gc_reserve_blocks:
            for _ in range(device.config.pages_per_block):
                address = manager.allocate_page(BlockType.USER)
                device.write_page(address, "x")
        address = manager.allocate_page(BlockType.TRANSLATION)
        assert manager.block_type(address.block) is BlockType.TRANSLATION


class TestMetadataValidity:
    def test_invalidate_metadata_page_is_tracked(self, manager, device):
        address = manager.allocate_page(BlockType.TRANSLATION)
        device.write_page(address, "t0")
        manager.invalidate_metadata_page(address)
        assert manager.metadata_invalid_count(address.block) == 1
        assert address.page not in manager.metadata_valid_offsets(address.block)

    def test_fully_invalid_metadata_block_detection(self, manager, device):
        addresses = []
        for i in range(device.config.pages_per_block):
            address = manager.allocate_page(BlockType.VALIDITY)
            device.write_page(address, i)
            addresses.append(address)
        block_id = addresses[0].block
        assert not manager.is_fully_invalid_metadata_block(block_id)
        for address in addresses:
            manager.invalidate_metadata_page(address)
        assert manager.is_fully_invalid_metadata_block(block_id)

    def test_user_blocks_are_never_fully_invalid_metadata(self, manager, device):
        address = manager.allocate_page(BlockType.USER)
        device.write_page(address, "u")
        assert not manager.is_fully_invalid_metadata_block(address.block)


class TestReclamation:
    def test_release_block_returns_it_to_the_pool(self, manager, device):
        address = manager.allocate_page(BlockType.USER)
        device.write_page(address, "x")
        before = manager.free_block_count
        manager.release_block(address.block)
        assert manager.free_block_count == before + 1
        assert manager.block_type(address.block) is BlockType.FREE

    def test_release_clears_active_pointer(self, manager, device):
        address = manager.allocate_page(BlockType.USER)
        device.write_page(address, "x")
        manager.release_block(address.block)
        assert not manager.is_active(address.block)

    def test_blocks_of_type(self, manager, device):
        address = manager.allocate_page(BlockType.TRANSLATION)
        device.write_page(address, "t")
        assert address.block in manager.blocks_of_type(BlockType.TRANSLATION)


class TestRecoveryRebuild:
    def test_rebuild_assigns_types_and_free_pool(self, manager, device):
        user = manager.allocate_page(BlockType.USER)
        device.write_page(user, "u")
        manager.rebuild_from_types({user.block: BlockType.USER})
        assert manager.block_type(user.block) is BlockType.USER
        assert manager.free_block_count == device.config.num_blocks - 1

    def test_rebuild_treats_erased_blocks_as_free(self, manager, device):
        user = manager.allocate_page(BlockType.USER)
        device.write_page(user, "u")
        device.erase_block(user.block)
        manager.rebuild_from_types({user.block: BlockType.USER})
        assert manager.block_type(user.block) is BlockType.FREE

    def test_rebuild_reopens_partially_written_block_as_active(self, manager,
                                                               device):
        user = manager.allocate_page(BlockType.USER)
        device.write_page(user, "u")
        manager.rebuild_from_types({user.block: BlockType.USER})
        next_address = manager.allocate_page(BlockType.USER)
        assert next_address.block == user.block
        assert next_address.page == 1
