"""Behavioural tests for the competitor FTLs (DFTL, LazyFTL, µ-FTL, IB-FTL)."""

import pytest

from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose
from repro.ftl.dftl import DFTL
from repro.ftl.ib_ftl import IBFTL
from repro.ftl.lazyftl import DEFAULT_DIRTY_FRACTION, LazyFTL
from repro.ftl.mu_ftl import MuFTL
from repro.ftl.validity.pvb_flash import FlashPVB
from repro.ftl.validity.pvb_ram import RamPVB
from repro.ftl.validity.pvl import PageValidityLog
from repro.workloads.base import fill_device
from repro.workloads.generators import UniformRandomWrites


def small_device():
    return FlashDevice(simulation_configuration(num_blocks=96,
                                                pages_per_block=16,
                                                page_size=256))


class TestConfigurationsMatchThePaper:
    def test_dftl_uses_ram_pvb_and_battery(self):
        ftl = DFTL(small_device(), cache_capacity=64)
        assert isinstance(ftl.validity_store, RamPVB)
        assert ftl.uses_battery
        assert ftl.dirty_fraction_limit is None

    def test_lazyftl_uses_ram_pvb_and_bounded_dirty_entries(self):
        ftl = LazyFTL(small_device(), cache_capacity=64)
        assert isinstance(ftl.validity_store, RamPVB)
        assert not ftl.uses_battery
        assert ftl.dirty_fraction_limit == DEFAULT_DIRTY_FRACTION

    def test_mu_ftl_uses_flash_pvb_and_battery(self):
        ftl = MuFTL(small_device(), cache_capacity=64)
        assert isinstance(ftl.validity_store, FlashPVB)
        assert ftl.uses_battery

    def test_ib_ftl_uses_pvl_and_bounded_dirty_entries(self):
        ftl = IBFTL(small_device(), cache_capacity=64)
        assert isinstance(ftl.validity_store, PageValidityLog)
        assert not ftl.uses_battery
        assert ftl.dirty_fraction_limit == DEFAULT_DIRTY_FRACTION


class TestDataIntegrity:
    @pytest.mark.parametrize("ftl_class", [DFTL, LazyFTL, MuFTL, IBFTL])
    def test_random_updates_preserve_data(self, ftl_class):
        ftl = ftl_class(small_device(), cache_capacity=96)
        fill_device(ftl)
        shadow = {logical: ("init", logical)
                  for logical in range(ftl.config.logical_pages)}
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=13)
        for operation in workload.operations(4000):
            ftl.write(operation.logical, operation.payload)
            shadow[operation.logical] = operation.payload
        mismatches = [logical for logical, payload in shadow.items()
                      if ftl.read(logical) != payload]
        assert mismatches == []

    @pytest.mark.parametrize("ftl_class", [DFTL, LazyFTL, MuFTL, IBFTL])
    def test_flush_then_cold_reads(self, ftl_class):
        ftl = ftl_class(small_device(), cache_capacity=96)
        for logical in range(0, 200, 7):
            ftl.write(logical, ("cold", logical))
        ftl.flush()
        ftl.cache.clear()
        for logical in range(0, 200, 7):
            assert ftl.read(logical) == ("cold", logical)


class TestDirtyEntryBound:
    def test_lazyftl_respects_the_bound(self):
        ftl = LazyFTL(small_device(), cache_capacity=100,
                      dirty_fraction_limit=0.1)
        fill_device(ftl, fraction=0.5)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=19)
        for operation in workload.operations(1000):
            ftl.write(operation.logical, operation.payload)
        assert ftl.cache.dirty_count <= max(1, int(100 * 0.1))

    def test_dftl_accumulates_dirty_entries_freely(self):
        ftl = DFTL(small_device(), cache_capacity=100)
        fill_device(ftl, fraction=0.5)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=19)
        for operation in workload.operations(500):
            ftl.write(operation.logical, operation.payload)
        assert ftl.cache.dirty_count > 10

    def test_bounded_dirty_entries_increase_translation_writes(self):
        """The paper's contention: a tighter dirty bound means less amortization."""
        results = {}
        for name, ftl_class in (("DFTL", DFTL), ("LazyFTL", LazyFTL)):
            ftl = ftl_class(small_device(), cache_capacity=96)
            fill_device(ftl)
            workload = UniformRandomWrites(ftl.config.logical_pages, seed=23)
            for operation in workload.operations(3000):
                ftl.write(operation.logical, operation.payload)
            results[name] = ftl.stats.total(IOKind.PAGE_WRITE,
                                            IOPurpose.TRANSLATION)
        assert results["LazyFTL"] > results["DFTL"]


class TestValidityCostDifferences:
    def test_flash_pvb_generates_validity_writes_ram_pvb_does_not(self):
        totals = {}
        for name, ftl_class in (("DFTL", DFTL), ("uFTL", MuFTL)):
            ftl = ftl_class(small_device(), cache_capacity=96)
            fill_device(ftl)
            workload = UniformRandomWrites(ftl.config.logical_pages, seed=29)
            for operation in workload.operations(2000):
                ftl.write(operation.logical, operation.payload)
            totals[name] = ftl.stats.total(IOKind.PAGE_WRITE,
                                           IOPurpose.VALIDITY)
        assert totals["DFTL"] == 0
        assert totals["uFTL"] > 1000

    def test_ram_footprint_ordering_matches_the_paper(self):
        """DFTL/LazyFTL (RAM PVB) need more integrated RAM than the rest."""
        footprints = {}
        for name, ftl_class in (("DFTL", DFTL), ("LazyFTL", LazyFTL),
                                ("uFTL", MuFTL), ("IB-FTL", IBFTL)):
            ftl = ftl_class(small_device(), cache_capacity=64)
            footprints[name] = ftl.ram_breakdown()["validity"]
        assert footprints["DFTL"] == footprints["LazyFTL"]
        assert footprints["uFTL"] < footprints["DFTL"]

    def test_describe_reports_policy_and_battery(self):
        ftl = MuFTL(small_device(), cache_capacity=64)
        summary = ftl.describe()
        assert summary["ftl"] == "uFTL"
        assert summary["uses_battery"] is True
