"""Tests for execution backends: specs, coercion, sharding, determinism."""

import json

import pytest

from repro.engine import (BackendSpec, ExecutionBackend, PoolBackend,
                          SerialBackend, ShardBackend, SweepPlan,
                          backend_names, canonical_row_bytes, load_results,
                          open_store, run_sweep)

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


def tiny_plan(**overrides):
    defaults = dict(ftls=["GeckoFTL", "DFTL"], devices=[dict(TINY)],
                    cache_capacities=[48], seeds=[1, 2],
                    write_operations=600, interval_writes=300)
    defaults.update(overrides)
    return SweepPlan(**defaults)


class TestBackendSpecs:
    def test_registry_lists_shipped_backends(self):
        assert {"serial", "pool", "shard"} <= set(backend_names())

    def test_spec_string_parses_like_ftl_specs(self):
        backend = BackendSpec.of("pool(workers=3)").build()
        assert isinstance(backend, PoolBackend)
        assert backend.workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="execution backend"):
            ExecutionBackend.of("teleport")

    def test_bad_kwargs_rejected(self):
        with pytest.raises(TypeError):
            ExecutionBackend.of("serial(workers=2)")


class TestCoercion:
    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert ExecutionBackend.of(backend) is backend

    def test_int_is_legacy_worker_count(self):
        assert isinstance(ExecutionBackend.of(1), SerialBackend)
        pool = ExecutionBackend.of(5)
        assert isinstance(pool, PoolBackend) and pool.workers == 5
        with pytest.raises(ValueError):
            ExecutionBackend.of(0)

    def test_bool_is_not_a_worker_count(self):
        with pytest.raises(TypeError):
            ExecutionBackend.of(True)

    def test_str_forms(self):
        assert str(SerialBackend()) == "serial"
        assert str(PoolBackend(4)) == "pool(workers=4)"
        assert str(ShardBackend(hosts=4, chunk=8)) == \
               "shard(hosts=4, chunk=8)"
        assert str(ShardBackend(hosts=4, index=2)) == \
               "shard(hosts=4, chunk=16, index=2)"


class TestShardPartition:
    def test_shard_of_is_pure_and_in_range(self):
        backend = ShardBackend(hosts=4)
        keys = [task.key() for task in tiny_plan(seeds=[1, 2, 3, 4]).tasks()]
        owners = [backend.shard_of(key) for key in keys]
        assert owners == [backend.shard_of(key) for key in keys]
        assert all(0 <= owner < 4 for owner in owners)

    def test_partition_is_independent_of_worker_settings(self):
        keys = [task.key() for task in tiny_plan().tasks()]
        a = ShardBackend(hosts=4, index=0)
        b = ShardBackend(hosts=4, workers=2)
        assert [a.shard_of(key) for key in keys] == \
               [b.shard_of(key) for key in keys]

    def test_single_host_owns_everything(self):
        backend = ShardBackend(hosts=1)
        assert {backend.shard_of(task.key())
                for task in tiny_plan().tasks()} == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardBackend(hosts=0)
        with pytest.raises(ValueError):
            ShardBackend(chunk=0)
        with pytest.raises(ValueError, match="shard index"):
            ShardBackend(hosts=2, index=2)
        with pytest.raises(ValueError, match="shard index"):
            ShardBackend(hosts=2, index=-1)


class TestShardExecution:
    def test_worker_mode_writes_sub_store_not_main(self, tmp_path):
        plan = tiny_plan()
        main = tmp_path / "out.jsonl"
        for index in range(2):
            run_sweep(plan, store=str(main),
                      backend=f"shard(hosts=2, index={index})")
        # The workers only populate their sub-stores...
        assert not main.exists() or load_results(main) == []
        sub_rows = []
        for index in range(2):
            sub = tmp_path / f"out.shard{index}of2.jsonl"
            assert sub.exists()
            sub_rows.extend(load_results(sub))
        assert {row["key"] for row in sub_rows} == \
               {task.key() for task in plan.tasks()}

    def test_worker_emits_its_plan_json(self, tmp_path):
        plan = tiny_plan()
        run_sweep(plan, store=str(tmp_path / "out.sqlite"),
                  backend="shard(hosts=2, index=1)")
        document = json.loads(
            (tmp_path / "out.shard1of2.plan.json").read_text())
        assert document["hosts"] == 2 and document["shard"] == 1
        assert document["store"] == "out.shard1of2.sqlite"
        backend = ShardBackend(hosts=2)
        keys = {task.key() for task in plan.tasks()
                if backend.shard_of(task.key()) == 1}
        from repro.engine import SweepTask
        assert {SweepTask.from_dict(entry).key()
                for entry in document["tasks"]} == keys

    def test_coordinator_merges_worker_sub_stores(self, tmp_path):
        plan = tiny_plan()
        main = tmp_path / "out.jsonl"
        for index in range(2):
            run_sweep(plan, store=str(main),
                      backend=f"shard(hosts=2, index={index})")
        report = run_sweep(plan, store=str(main),
                           backend="shard(hosts=2)")
        assert report.executed == len(plan)
        merged = load_results(main)
        assert [row["index"] for row in merged] == [0, 1, 2, 3]
        # The merge reused the workers' rows verbatim (timing included).
        sub_rows = {row["key"]: row for index in range(2) for row in
                    load_results(tmp_path / f"out.shard{index}of2.jsonl")}
        assert merged == [sub_rows[row["key"]] for row in merged]

    def test_interrupted_worker_resumes_from_sub_store(self, tmp_path):
        plan = tiny_plan()
        backend = ShardBackend(hosts=1, index=0)
        mine = [task for task in plan.tasks()]
        main = tmp_path / "out.jsonl"
        # First worker run dies after two tasks (simulated with a slice).
        run_sweep(mine[:2], store=str(main), backend=backend)
        sub = tmp_path / "out.shard0of1.jsonl"
        first = load_results(sub)
        assert len(first) == 2
        # Re-running the full shard only executes the missing tasks.
        run_sweep(plan, store=str(main),
                  backend="shard(hosts=1, index=0)")
        second = load_results(sub)
        assert second[:2] == first  # earlier rows reused byte-for-byte
        assert len(second) == len(plan)


class TestShardDeterminism:
    """ISSUE acceptance: 1/2/4 shards merge byte-identically."""

    @pytest.mark.parametrize("store_name", ["out.jsonl", "out.sqlite"])
    def test_shard_counts_merge_identically(self, tmp_path, store_name):
        plan = tiny_plan()
        reference = [canonical_row_bytes(row)
                     for row in run_sweep(plan).rows]
        for hosts in (1, 2, 4):
            directory = tmp_path / f"hosts{hosts}"
            directory.mkdir()
            main = directory / store_name
            for index in range(hosts):
                run_sweep(plan, store=str(main),
                          backend=f"shard(hosts={hosts}, index={index})")
            run_sweep(plan, store=str(main),
                      backend=f"shard(hosts={hosts})")
            merged = [canonical_row_bytes(row)
                      for row in load_results(main)]
            assert merged == reference, hosts

    def test_coordinator_without_workers_matches_serial(self, tmp_path):
        plan = tiny_plan()
        main = tmp_path / "out.sqlite"
        run_sweep(plan, store=str(main), backend="shard(hosts=2)")
        serial = [canonical_row_bytes(row) for row in run_sweep(plan).rows]
        assert [canonical_row_bytes(row)
                for row in load_results(main)] == serial

    def test_shard_backend_without_store_still_plan_ordered(self):
        plan = tiny_plan()
        report = run_sweep(plan, backend="shard(hosts=2)")
        assert [row["index"] for row in report.rows] == [0, 1, 2, 3]


class TestPoolBackend:
    def test_failure_raises_sweep_task_error(self):
        from repro.engine import SweepTask, SweepTaskError
        bad = SweepTask(ftl="GeckoFTL(cache_capacity=-5)",
                        workload="UniformRandomWrites", device=dict(TINY),
                        cache_capacity=48, seed=1, write_operations=100,
                        interval_writes=50)
        with pytest.raises(SweepTaskError, match="GeckoFTL"):
            run_sweep([bad], backend="pool(workers=2)")

    def test_empty_pending_yields_nothing(self):
        assert list(PoolBackend(2).execute([])) == []

    def test_executor_skips_append_for_persisting_backends(self, tmp_path):
        # persists_rows=True means the backend owns persistence; the
        # executor must not double-append yielded rows to the main store.
        plan = tiny_plan(ftls=["GeckoFTL"], seeds=[1])

        class Recorder(SerialBackend):
            persists_rows = True

        with open_store(tmp_path / "main.jsonl") as store:
            report = run_sweep(plan, backend=Recorder(), store=store)
            assert report.executed == 1
            assert store.rows() == []
