"""Tests for ``repro.obs``: tracing, metrics, telemetry, zero interference.

The interference tests are the load-bearing ones: the observability layer
must be *capture-only*. Enabling it may never change an ``IOStats``
breakdown, a timing sketch, or a sweep row — locked here against the same
seed-generated golden file as ``test_flash_equivalence`` (which the observed
device must keep matching byte-for-byte).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import test_flash_equivalence as equivalence
from repro.api.session import SimulationSession
from repro.core.gecko_ftl import GeckoFTL
from repro.engine import SweepPlan, run_sweep
from repro.engine.results import canonical_row_bytes
from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.stats import IOKind, IOPurpose, IOStats
from repro.ftl.dftl import DFTL
from repro.obs import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_TRACE_CAPACITY,
    EventTrace,
    MetricsRecorder,
    ObsSpec,
    ObservedFlashDevice,
    Observer,
    SweepProgress,
    event_names,
)
from repro.timing.sketch import LatencySketch
from repro.workloads.registry import WorkloadSpec

GOLDEN_PATH = Path(__file__).parent / "data" / "equivalence_golden.json"


# ----------------------------------------------------------------------
# EventTrace
# ----------------------------------------------------------------------
class TestEventTrace:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(0)

    def test_ring_eviction_keeps_absolute_sequence(self):
        trace = EventTrace(capacity=4)
        for block in range(6):
            trace.append_flash(IOKind.PAGE_WRITE, block, IOPurpose.USER)
        assert len(trace) == 4
        assert trace.seq == 6
        assert trace.dropped == 2
        events = list(trace.events())
        # The two oldest records were evicted; sequence numbers are absolute.
        assert [event["seq"] for event in events] == [3, 4, 5, 6]
        assert [event["block"] for event in events] == [2, 3, 4, 5]

    def test_flash_event_decoding(self):
        trace = EventTrace()
        trace.append_flash(IOKind.BLOCK_ERASE, 17, IOPurpose.GC)
        (event,) = trace.events()
        assert event == {"seq": 1, "event": "block_erase", "block": 17,
                         "purpose": "gc"}

    def test_filter_by_kind_and_unknown_kind_raises(self):
        trace = EventTrace()
        trace.append_flash(IOKind.PAGE_WRITE, 1, IOPurpose.USER)
        trace.append_label(5, "user", a=9)          # gc_start
        trace.append(6, 9, 3, 5)                    # gc_end
        names = [event["event"] for event in trace.events(["gc_start",
                                                           "gc_end"])]
        assert names == ["gc_start", "gc_end"]
        with pytest.raises(ValueError, match="unknown event kind"):
            list(trace.events(["no_such_event"]))

    def test_label_interning_and_gc_decoding(self):
        trace = EventTrace()
        trace.append_label(5, "user", a=3)
        trace.append_label(5, "user", a=4)
        trace.append_label(5, "translation", a=5)
        assert len(trace._labels) == 2
        victims = [(event["block"], event["victim_type"])
                   for event in trace.events()]
        assert victims == [(3, "user"), (4, "user"), (5, "translation")]

    def test_reset_clears_everything(self):
        trace = EventTrace(capacity=2)
        for block in range(5):
            trace.append_flash(IOKind.PAGE_READ, block, IOPurpose.USER)
        trace.reset()
        assert len(trace) == 0
        assert trace.seq == 0
        assert trace.dropped == 0

    def test_export_jsonl_is_canonical(self):
        def build():
            trace = EventTrace()
            trace.append_flash(IOKind.PAGE_WRITE, 7, IOPurpose.GC)
            trace.append(11)                        # crash
            return trace

        first, second = io.StringIO(), io.StringIO()
        assert build().export_jsonl(first) == 2
        build().export_jsonl(second)
        assert first.getvalue() == second.getvalue()
        decoded = [json.loads(line)
                   for line in first.getvalue().splitlines()]
        assert decoded[1] == {"seq": 2, "event": "crash"}

    def test_summary_counts_by_name(self):
        trace = EventTrace()
        for _ in range(3):
            trace.append_flash(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        trace.append_flash(IOKind.SPARE_READ, 0, IOPurpose.RECOVERY)
        assert trace.summary() == {"page_write": 3, "spare_read": 1}

    def test_event_names_cover_flash_kinds_and_lifecycle(self):
        names = event_names()
        for kind in IOKind:
            assert kind.value in names
        for lifecycle in ("gc_start", "gc_end", "gecko_flush", "gecko_merge",
                          "cache_evict", "recovery_step", "crash"):
            assert lifecycle in names


# ----------------------------------------------------------------------
# ObsSpec
# ----------------------------------------------------------------------
class TestObsSpec:
    def test_presets(self):
        assert ObsSpec.preset("trace") == ObsSpec(trace=True, metrics=False)
        assert ObsSpec.preset("metrics") == ObsSpec(trace=False, metrics=True)
        assert ObsSpec.preset("full") == ObsSpec()

    def test_parse_with_overrides(self):
        spec = ObsSpec.parse("metrics(sample_every=250)")
        assert spec == ObsSpec(trace=False, metrics=True, sample_every=250)

    def test_of_coercions(self):
        assert ObsSpec.of(True) == ObsSpec()
        assert ObsSpec.of("full") == ObsSpec()
        assert ObsSpec.of({"preset": "trace", "trace_capacity": 128}) == \
            ObsSpec(trace=True, metrics=False, trace_capacity=128)
        spec = ObsSpec(metrics=False)
        assert ObsSpec.of(spec) is spec
        with pytest.raises(TypeError):
            ObsSpec.of(3.14)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown obs preset"):
            ObsSpec.preset("verbose")
        with pytest.raises(ValueError, match="neither tracing nor metrics"):
            ObsSpec(trace=False, metrics=False)
        with pytest.raises(ValueError, match="positive integer"):
            ObsSpec(sample_every=0)
        with pytest.raises(ValueError, match="positive integer"):
            ObsSpec(trace_capacity=True)
        with pytest.raises(ValueError, match="unknown obs field"):
            ObsSpec.from_dict({"cadence": 5})

    def test_str_roundtrips_presets(self):
        assert str(ObsSpec.preset("metrics")) == "metrics"
        assert str(ObsSpec()) == "full"
        assert "sample_every=250" in str(ObsSpec(sample_every=250))

    def test_defaults_exported(self):
        spec = ObsSpec()
        assert spec.trace_capacity == DEFAULT_TRACE_CAPACITY
        assert spec.sample_every == DEFAULT_SAMPLE_EVERY


# ----------------------------------------------------------------------
# Observed devices and the metrics recorder
# ----------------------------------------------------------------------
class TestObservedDevice:
    def test_every_charged_write_is_traced(self, tiny_config):
        observer = Observer(ObsSpec.preset("trace"))
        device = ObservedFlashDevice(tiny_config, obs=observer)
        for page in range(8):
            device.write_page_tagged(PhysicalAddress(0, page), None)
        summary = observer.trace.summary()
        assert summary["page_write"] == device.stats.page_writes == 8
        traced = sum(summary.values())
        assert traced == observer.trace.seq

    def test_metrics_sampling_threshold(self, tiny_config):
        observer = Observer(ObsSpec(trace=False, metrics=True,
                                    sample_every=10))
        device = ObservedFlashDevice(tiny_config, obs=observer)
        recorder = observer.metrics
        # Device-level page writes are not host ops, so no row appears...
        for page in range(8):
            device.write_page_tagged(PhysicalAddress(0, page), None)
        assert recorder.rows == []
        # ...until host operations cross the threshold.
        device.stats.record_host_write(10)
        observer.on_flash_op(IOKind.PAGE_WRITE, 0, IOPurpose.USER)
        assert len(recorder.rows) == 1
        row = recorder.rows[0]
        assert row["host_ops"] == 10
        assert row["writes_w"] == 10

    def test_unbound_recorder_rejects_sampling(self):
        recorder = MetricsRecorder()
        with pytest.raises(RuntimeError, match="not bound"):
            recorder.sample()
        recorder.maybe_sample()  # silently a no-op while unbound
        with pytest.raises(ValueError):
            MetricsRecorder(sample_every=0)

    def test_csv_and_jsonl_exports(self, tiny_config):
        observer = Observer(ObsSpec(trace=False, metrics=True,
                                    sample_every=5))
        device = ObservedFlashDevice(tiny_config, obs=observer)
        device.stats.record_host_write(5)
        observer.metrics.sample()
        csv_out, jsonl_out = io.StringIO(), io.StringIO()
        assert observer.metrics.export_csv(csv_out) == 1
        assert observer.metrics.export_jsonl(jsonl_out) == 1
        header = csv_out.getvalue().splitlines()[0].split(",")
        assert header == list(observer.metrics.columns)
        assert "p50_us_w" not in header  # untimed device: no timing columns
        row = json.loads(jsonl_out.getvalue())
        assert row["writes_w"] == 5


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionObservability:
    def test_full_capture_records_gc_and_metrics(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        with SimulationSession("GeckoFTL", device=config,
                               ftl_kwargs={"cache_capacity": 64},
                               obs="full(sample_every=500)") as session:
            session.warmup()
            workload = WorkloadSpec.of("UniformRandomWrites").build(
                session.config.logical_pages, seed=11)
            session.run(workload, 2_000)
            trace = session.obs.trace
            summary = trace.summary()
            assert summary["gc_start"] == summary["gc_end"] > 0
            assert summary["page_write"] > 0
            rows = session.obs.metrics.rows
            assert len(rows) >= 3
            host_ops = [row["host_ops"] for row in rows]
            assert host_ops == sorted(host_ops)
            # GC happened, so some window carries GC page writes.
            assert any(row["writes_gc_w"] > 0 for row in rows)

    def test_warmup_resets_capture(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        with SimulationSession("GeckoFTL", device=config,
                               ftl_kwargs={"cache_capacity": 64},
                               obs="full") as session:
            session.warmup()
            # The warm-up fill writes every logical page, yet the capture
            # starts empty: measurement begins after the warm-up.
            assert len(session.obs.trace) == 0
            assert session.obs.trace.seq == 0
            assert session.obs.metrics.rows == []

    def test_ready_made_device_conflict(self, tiny_config):
        device = ObservedFlashDevice(tiny_config,
                                     obs=Observer(ObsSpec.preset("trace")))
        with pytest.raises(ValueError, match="conflicts"):
            SimulationSession("GeckoFTL", device=device, obs="metrics",
                              ftl_kwargs={"cache_capacity": 64})

    def test_ready_made_observed_device_is_discovered(self, tiny_config):
        observer = Observer(ObsSpec.preset("trace"))
        device = ObservedFlashDevice(tiny_config, obs=observer)
        with SimulationSession("GeckoFTL", device=device,
                               ftl_kwargs={"cache_capacity": 64}) as session:
            assert session.obs is observer
            session.write(3, data="x")
            assert len(observer.trace) > 0

    def test_crash_and_recovery_events(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        with SimulationSession("GeckoFTL", device=config,
                               ftl_kwargs={"cache_capacity": 64},
                               obs="trace") as session:
            session.warmup()
            workload = WorkloadSpec.of("UniformRandomWrites").build(
                session.config.logical_pages, seed=5)
            session.run(workload, 800)
            session.crash()
            report = session.recover()
            crashes = list(session.obs.trace.events(["crash"]))
            assert len(crashes) == 1
            steps = list(session.obs.trace.events(["recovery_step"]))
            assert [event["step"] for event in steps] == \
                [step.name for step in report.steps]
            assert [event["page_reads"] for event in steps] == \
                [step.page_reads for step in report.steps]

    def test_timed_session_window_percentiles(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        with SimulationSession("GeckoFTL", device=config,
                               ftl_kwargs={"cache_capacity": 64},
                               obs="metrics(sample_every=500)",
                               timing="slc") as session:
            session.warmup()
            workload = WorkloadSpec.of("UniformRandomWrites").build(
                session.config.logical_pages, seed=11)
            session.run(workload, 2_000)
            rows = session.obs.metrics.rows
            assert rows
            assert all("p99_us_w" in row for row in rows)
            assert any(row["p99_us_w"] > 0 for row in rows)
            assert "p999_us_w" in session.obs.metrics.columns


# ----------------------------------------------------------------------
# Determinism and zero interference
# ----------------------------------------------------------------------
def _observed_exports(seed):
    config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                      page_size=256)
    with SimulationSession("GeckoFTL", device=config,
                           ftl_kwargs={"cache_capacity": 64},
                           obs="full(sample_every=400)") as session:
        session.warmup()
        workload = WorkloadSpec.of("UniformRandomWrites").build(
            session.config.logical_pages, seed=seed)
        session.run(workload, 1_500)
        trace_out, metrics_out = io.StringIO(), io.StringIO()
        session.obs.trace.export_jsonl(trace_out)
        session.obs.metrics.export_csv(metrics_out)
        return trace_out.getvalue(), metrics_out.getvalue()


class TestDeterminismAndInterference:
    def test_identical_seeds_export_identical_bytes(self):
        assert _observed_exports(23) == _observed_exports(23)
        first_trace, _ = _observed_exports(23)
        other_trace, _ = _observed_exports(24)
        assert first_trace != other_trace

    def test_observed_stats_match_seed_golden(self):
        """The observed device reproduces the seed goldens byte-for-byte.

        Reuses the exact randomized trace and fingerprint recipe of
        ``test_flash_equivalence`` with ``ObservedFlashDevice`` (full
        capture) substituted for ``FlashDevice`` — capture must not perturb
        a single counter.
        """
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        for ftl_class, key in ((GeckoFTL, "gecko"), (DFTL, "dftl")):
            config = simulation_configuration(num_blocks=64,
                                              pages_per_block=8,
                                              page_size=256)
            observer = Observer(ObsSpec(sample_every=100))
            ftl = ftl_class(ObservedFlashDevice(config, obs=observer),
                            cache_capacity=64)
            equivalence.fill_device(ftl)
            ftl.stats.reset()
            observer.reset_capture()
            operations = equivalence._trace(config.logical_pages)
            submitted = 0
            for start in range(0, len(operations), equivalence.BATCH):
                submitted += ftl.submit(
                    operations[start:start + equivalence.BATCH]).submitted
            assert submitted == equivalence.TRACE_OPS
            stats = ftl.stats
            fingerprint = {
                "breakdown": stats.breakdown(),
                "host_writes": stats.host_writes,
                "host_reads": stats.host_reads,
                "write_amplification": round(
                    stats.write_amplification(config.delta), 10),
                "free_pages": ftl.device.free_page_count(),
                "written_pages": ftl.device.written_page_count(),
                "write_clock": ftl.device.write_clock,
            }
            assert fingerprint == golden[key], key
            # And the capture actually captured the run.
            assert len(observer.trace) > 0
            assert len(observer.metrics.rows) > 0

    def test_obs_does_not_change_timing_or_snapshot(self):
        def run(obs):
            config = simulation_configuration(num_blocks=64,
                                              pages_per_block=8,
                                              page_size=256)
            with SimulationSession("GeckoFTL", device=config,
                                   ftl_kwargs={"cache_capacity": 64},
                                   obs=obs, timing="slc") as session:
                session.warmup()
                workload = WorkloadSpec.of("UniformRandomWrites").build(
                    session.config.logical_pages, seed=31)
                session.run(workload, 1_200)
                return (session.latency_summary(),
                        session.snapshot().row(),
                        session.device.timing.sketch.to_dict())

        plain = run(None)
        observed = run("full(sample_every=300)")
        assert plain == observed


# ----------------------------------------------------------------------
# IOStats.diff regression (the hardened window arithmetic metrics rely on)
# ----------------------------------------------------------------------
class TestIOStatsDiff:
    def test_diff_across_reset_clamps_to_zero(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, 7)
        stats.record_host_write(7)
        earlier = stats.snapshot()
        stats.reset()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, 2)
        window = stats.diff(earlier)
        assert window.page_write_counts[IOPurpose.USER] == 0
        assert window.page_writes == 0

    def test_diff_always_carries_every_purpose_key(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.GC, 3)
        earlier = IOStats()
        # A hand-built (or legacy-deserialized) baseline missing keys must
        # not poison the window: every purpose stays indexable.
        earlier.page_write_counts.pop(IOPurpose.GC)
        earlier.page_write_counts.pop(IOPurpose.VALIDITY)
        window = stats.diff(earlier)
        for counts in (window.page_write_counts, window.page_read_counts,
                       window.block_erase_counts, window.spare_read_counts,
                       window.spare_write_counts):
            assert set(counts) == set(IOPurpose)
        assert window.page_write_counts[IOPurpose.GC] == 3
        assert window.write_amplification(1.0, host_writes=1) == 3.0

    def test_diff_of_nested_windows_composes(self):
        stats = IOStats()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.USER, 5)
        first = stats.snapshot()
        stats.record(IOKind.PAGE_WRITE, IOPurpose.GC, 4)
        stats.record_host_write(2)
        window = stats.diff(first)
        # The window is a full IOStats: diffing it again keeps working.
        rewindow = window.diff(IOStats())
        assert rewindow.page_write_counts[IOPurpose.GC] == 4
        assert rewindow.host_writes == 2


# ----------------------------------------------------------------------
# Window sketches: merged windows == whole run (property)
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False,
                  allow_infinity=False),
        max_size=120),
    data=st.data(),
)
def test_window_sketches_merge_to_whole_run(samples, data):
    """Per-window sketches merged together equal the cumulative sketch.

    This is the invariant the metrics recorder leans on: draining a
    secondary window sketch at each sample boundary loses nothing relative
    to the run-wide sketch the timing model keeps.
    """
    boundaries = sorted(data.draw(
        st.lists(st.integers(min_value=0, max_value=len(samples)),
                 max_size=6)))
    whole = LatencySketch()
    merged = LatencySketch()
    window = LatencySketch()
    cuts = boundaries + [len(samples)]
    position = 0
    for cut in cuts:
        for value in samples[position:cut]:
            whole.record(value)
            window.record(value)
        merged.merge(window)
        window.reset()
        position = cut
    # Bucket tables, counts and extremes are integer/exact state, so the
    # merge reproduces them bit-for-bit; the running sum is float addition
    # in a different association order, hence approx.
    assert merged.count == whole.count
    assert merged.min_us == whole.min_us
    assert merged.max_us == whole.max_us
    assert merged.to_dict()["buckets"] == whole.to_dict()["buckets"]
    assert merged.sum_us == pytest.approx(whole.sum_us, rel=1e-12, abs=1e-9)
    for q in (0.0, 0.5, 0.9, 0.99, 0.999, 1.0):
        assert merged.quantile(q) == whole.quantile(q)


# ----------------------------------------------------------------------
# Sweep telemetry
# ----------------------------------------------------------------------
def _telemetry_plan():
    return SweepPlan(
        ftls=["GeckoFTL", "DFTL"], cache_capacities=[64],
        seeds=[1, 2], write_operations=400,
        devices=[{"num_blocks": 64, "pages_per_block": 8,
                  "page_size": 256}])


class TestSweepTelemetry:
    def test_progress_never_touches_canonical_rows(self):
        plan = _telemetry_plan()
        silent = run_sweep(plan)
        stream = io.StringIO()
        progress = SweepProgress(stream=stream)
        observed = run_sweep(plan, backend="pool(workers=2)",
                             on_task=progress)
        assert [canonical_row_bytes(row) for row in silent.rows] == \
            [canonical_row_bytes(row) for row in observed.rows]
        lines = stream.getvalue().splitlines()
        assert len(lines) == len(plan.tasks())
        assert lines[-1].startswith(f"[{len(lines)}/{len(lines)}]")
        assert "rows/s" in lines[0]

    def test_progress_resume_is_noop(self, tmp_path):
        plan = _telemetry_plan()
        sink = tmp_path / "rows.jsonl"
        first = run_sweep(plan, store=str(sink))
        assert first.executed == len(plan.tasks())
        stream = io.StringIO()
        progress = SweepProgress(stream=stream)
        resumed = run_sweep(plan, store=str(sink), resume=True,
                            on_task=progress)
        assert resumed.executed == 0
        assert resumed.skipped == len(plan.tasks())
        # Resumed rows replay through the callback with the wall time
        # persisted when they originally ran.
        assert progress.completed == len(plan.tasks())
        assert len(progress.task_walls) == len(plan.tasks())
        assert all(wall > 0.0 for wall in progress.task_walls)
        progress.finish()
        assert f"completed={len(plan.tasks())}/{len(plan.tasks())}" \
            in stream.getvalue()

    def test_note_failure_and_summary(self):
        stream = io.StringIO()
        progress = SweepProgress(stream=stream)
        progress.note_failure(RuntimeError("task 3 exploded"))
        assert "FAILED: task 3 exploded" in stream.getvalue()
        assert "failures=1" in progress.summary()
