"""Engine integration of the timing subsystem: plans, rows, aggregation."""

import pytest

from repro.engine import (LATENCY_FIELDS, SweepExecutor, SweepPlan, SweepTask,
                          aggregate, canonical_row_bytes, execute_task,
                          latency_table)
from repro.timing import TimingSpec

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


def timed_plan(**overrides):
    defaults = dict(ftls=["GeckoFTL", "DFTL"], devices=[dict(TINY)],
                    cache_capacities=[48], seeds=[1, 2],
                    write_operations=600, interval_writes=300,
                    timing="slc")
    defaults.update(overrides)
    return SweepPlan(**defaults)


class TestTimedPlansAndTasks:
    def test_plan_serializes_timing_canonically(self):
        plan = timed_plan()
        assert plan.timing == TimingSpec.preset("slc").to_dict()
        rebuilt = SweepPlan.from_dict(plan.to_dict())
        assert rebuilt.timing == plan.timing
        assert [t.key() for t in rebuilt.tasks()] \
            == [t.key() for t in plan.tasks()]

    def test_untimed_plan_omits_the_field(self):
        plan = timed_plan(timing=None)
        assert "timing" not in plan.to_dict()
        assert plan.tasks()[0].timing is None

    def test_timing_changes_task_keys_untimed_keys_stable(self):
        untimed = timed_plan(timing=None).tasks()[0]
        timed = timed_plan().tasks()[0]
        other = timed_plan(timing="mlc").tasks()[0]
        assert untimed.key() != timed.key()
        assert timed.key() != other.key()
        # Round-tripping a task through its dict keeps the key (resume).
        assert SweepTask.from_dict(timed.to_dict()).key() == timed.key()

    def test_row_carries_latency_columns_and_summary(self):
        row = execute_task(timed_plan().tasks()[0])
        for column in LATENCY_FIELDS:
            assert isinstance(row[column], float)
        assert row["timing"] == TimingSpec.preset("slc").to_dict()
        assert row["latency"]["requests"] == row["host_writes"]
        assert row["latency"]["kinds"]["write"]["count"] \
            == row["host_writes"]
        assert row["p50_us"] <= row["p99_us"] <= row["p999_us"]

    def test_untimed_row_has_no_latency_columns(self):
        row = execute_task(timed_plan(timing=None).tasks()[0])
        for column in LATENCY_FIELDS + ("timing", "latency"):
            assert column not in row


class TestTimedDeterminism:
    def test_rows_identical_across_worker_counts(self):
        plan = timed_plan()
        serial = SweepExecutor().run(plan).rows
        parallel = SweepExecutor("pool(workers=4)").run(plan).rows
        assert [canonical_row_bytes(row) for row in serial] \
            == [canonical_row_bytes(row) for row in parallel]

    def test_latency_columns_are_canonical(self):
        # The virtual-time columns survive canonicalization (they are part
        # of the determinism guarantee), unlike the wall-clock fields.
        row = execute_task(timed_plan().tasks()[0])
        encoded = canonical_row_bytes(row).decode("utf-8")
        for column in LATENCY_FIELDS:
            assert f'"{column}"' in encoded
        assert '"ops_per_sec"' not in encoded


class TestLatencyAggregation:
    def rows(self):
        return [execute_task(task) for task in timed_plan().tasks()]

    def test_aggregate_summarizes_latency_columns(self):
        summaries = aggregate(self.rows(), by=("ftl",))
        assert len(summaries) == 2
        for summary in summaries:
            assert summary["n"] == 2
            assert summary["p99_us_mean"] >= summary["p50_us_mean"]
            assert summary["p99_us_min"] <= summary["p99_us_max"]

    def test_aggregate_ignores_missing_latency_metrics(self):
        untimed = [execute_task(task)
                   for task in timed_plan(timing=None).tasks()]
        summaries = aggregate(untimed, by=("ftl",))
        for summary in summaries:
            assert "p99_us_mean" not in summary
            assert "wa_total_mean" in summary

    def test_latency_table_groups_and_averages(self):
        table = latency_table(self.rows(), by=("ftl",))
        assert [entry["ftl"] for entry in table] == ["GeckoFTL", "DFTL"]
        for entry in table:
            assert entry["n"] == 2
            assert set(entry) >= set(LATENCY_FIELDS) | {"mean_us", "max_us"}
            assert entry["p50_us"] <= entry["p99_us"] <= entry["p999_us"]
            assert entry["max_us"] >= entry["p999_us"]

    def test_latency_table_skips_untimed_rows(self):
        mixed = self.rows() + [execute_task(t)
                               for t in timed_plan(timing=None).tasks()]
        table = latency_table(mixed, by=("ftl",))
        assert all(entry["n"] == 2 for entry in table)
        assert latency_table([execute_task(
            timed_plan(timing=None).tasks()[0])]) == []


class TestTimedCrashRows:
    def test_crash_row_reports_recovery_virtual_time(self):
        task = timed_plan(ftls=["GeckoFTL"], seeds=[1],
                          crash={"after_ops": 300}).tasks()[0]
        row = execute_task(task)
        assert row["crash"]["ops_completed"] == 300
        assert isinstance(row["recovery_virtual_us"], float)
        assert row["recovery_virtual_us"] >= 0.0
        for column in LATENCY_FIELDS:
            assert isinstance(row[column], float)

    def test_timed_crash_rows_deterministic_across_workers(self):
        plan = timed_plan(seeds=[1, 2, 3],
                          crash={"after_ops": 250, "phase": "gc"})
        serial = SweepExecutor().run(plan).rows
        parallel = SweepExecutor("pool(workers=4)").run(plan).rows
        assert [canonical_row_bytes(row) for row in serial] \
            == [canonical_row_bytes(row) for row in parallel]

    def test_untimed_crash_row_has_no_virtual_time(self):
        task = timed_plan(ftls=["DFTL"], seeds=[1], timing=None,
                          crash={"after_ops": 300}).tasks()[0]
        row = execute_task(task)
        assert "recovery_virtual_us" not in row
