"""Purpose-tag leakage audit.

Every charged flash operation carries an :class:`IOPurpose` so the
write-amplification breakdown, the validity accounting, and the timing
model's foreground/background split can attribute it. ``OTHER`` is the
default parameter value on the device fast paths — any operation that ends
up tagged ``OTHER`` slipped through a call site that forgot to attribute
itself. These tests lock the audit result: across every registered FTL
(plus the wear-leveling variant), a full lifecycle — fill, mixed host IO
with GC pressure, trims, crash, recovery — records *zero* ``OTHER``
operations, and the per-purpose counts exactly partition each kind's total.
"""

import pytest

from repro import SimulationSession, UniformRandomWrites, ftl_names
from repro.engine import SweepPlan, execute_task
from repro.flash.stats import IOKind, IOPurpose
from repro.flash.config import simulation_configuration
from repro.ftl.operations import Operation, OpKind

TINY = dict(num_blocks=96, pages_per_block=16, page_size=256)

#: Every registered FTL, plus one spec exercising the wear-leveling path.
AUDITED_SPECS = sorted(ftl_names()) + [
    "GeckoFTL(enable_wear_leveling=True)"]


def assert_no_leakage(stats):
    __tracebackhint__ = True
    for kind in IOKind:
        per_purpose = {purpose: stats.total(kind, purpose)
                       for purpose in IOPurpose}
        assert sum(per_purpose.values()) == stats.total(kind), kind
        assert per_purpose[IOPurpose.OTHER] == 0, (
            f"{per_purpose[IOPurpose.OTHER]} {kind.value} operation(s) "
            f"leaked through with purpose=OTHER")


@pytest.mark.parametrize("spec", AUDITED_SPECS)
def test_full_lifecycle_records_no_other_ops(spec):
    config = simulation_configuration(**TINY)
    with SimulationSession(spec, device=config,
                           ftl_kwargs={"cache_capacity": 48}) as session:
        session.warmup(reset_stats=False)
        workload = UniformRandomWrites(config.logical_pages, seed=5)
        session.run(workload, 800)  # enough churn to force GC + merges
        session.submit([Operation(OpKind.READ, logical)
                        for logical in range(0, 40)])
        session.submit([Operation(OpKind.TRIM, logical)
                        for logical in range(0, 20)])
        session.crash()
        session.recover()
        session.run(workload, 100)
        assert_no_leakage(session.stats)
        assert "other" not in session.wa_breakdown()
    # close() flushes dirty state; audit the shutdown IO too.
    assert_no_leakage(session.stats)


def test_sweep_cell_rows_carry_no_other_wa():
    plan = SweepPlan(ftls=sorted(ftl_names()), devices=[dict(TINY)],
                     cache_capacities=[48], seeds=[1],
                     write_operations=500, interval_writes=250)
    for task in plan.tasks():
        row = execute_task(task)
        assert "wa_other" not in row["wa_breakdown"]
        assert "other" not in row["wa_breakdown"]
