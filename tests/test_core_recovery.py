"""Tests for power failure and the GeckoRec recovery algorithm (Appendix C)."""

import random

import pytest

from repro.core.gecko_ftl import GeckoFTL
from repro.core.recovery import GeckoRecovery
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.workloads.base import fill_device


def build_ftl(num_blocks=96, pages_per_block=16, page_size=256,
              cache_capacity=96, **kwargs):
    config = simulation_configuration(num_blocks=num_blocks,
                                      pages_per_block=pages_per_block,
                                      page_size=page_size)
    return GeckoFTL(FlashDevice(config), cache_capacity=cache_capacity,
                    **kwargs)


def run_random_updates(ftl, shadow, count, seed):
    rng = random.Random(seed)
    for i in range(count):
        logical = rng.randrange(ftl.config.logical_pages)
        payload = ("rec", logical, i, seed)
        ftl.write(logical, payload)
        shadow[logical] = payload


@pytest.fixture
def crashed_ftl():
    """An FTL that has been running for a while and then lost power."""
    ftl = build_ftl()
    fill_device(ftl)
    shadow = {logical: ("init", logical) for logical in
              range(ftl.config.logical_pages)}
    run_random_updates(ftl, shadow, 4000, seed=17)
    recovery = GeckoRecovery(ftl)
    recovery.simulate_power_failure()
    return ftl, shadow, recovery


class TestPowerFailure:
    def test_power_failure_clears_ram_structures(self):
        ftl = build_ftl()
        fill_device(ftl, fraction=0.5)
        recovery = GeckoRecovery(ftl)
        recovery.simulate_power_failure()
        assert len(ftl.cache) == 0
        assert all(location is None for location in ftl.translation_table.gmd)
        assert ftl.gecko.num_runs == 0
        assert all(ftl.bvc.valid_count(block) == 0
                   for block in range(ftl.config.num_blocks))

    def test_flash_contents_survive(self):
        ftl = build_ftl()
        ftl.write(3, "persisted")
        address = ftl.cache.peek(3).physical
        GeckoRecovery(ftl).simulate_power_failure()
        assert ftl.device.peek(address).data == "persisted"


class TestGeckoRec:
    def test_all_data_is_readable_after_recovery(self, crashed_ftl):
        ftl, shadow, recovery = crashed_ftl
        recovery.recover()
        mismatches = [logical for logical, payload in shadow.items()
                      if ftl.read(logical) != payload]
        assert mismatches == []

    def test_report_contains_all_steps(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        names = [step.name for step in report.steps]
        assert names == ["step1_bid", "step2_gmd", "step3_run_directories",
                         "step4_buffer", "step5_bvc", "step6_dirty_entries"]

    def test_step1_costs_one_spare_read_per_nonfree_block(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        step1 = report.steps[0]
        assert step1.spare_reads <= ftl.config.num_blocks
        assert step1.page_reads == 0

    def test_dirty_entry_scan_is_bounded_by_two_c(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        step6 = report.steps[-1]
        # Bounded by 2*C spare reads plus at most one block of slack
        # (the scan finishes the block it is in when the budget runs out).
        slack = ftl.config.pages_per_block
        assert step6.spare_reads <= 2 * ftl.cache.capacity + slack

    def test_recovered_entries_bounded_by_cache_capacity(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        assert report.recovered_mapping_entries <= ftl.cache.capacity
        assert report.recovered_mapping_entries > 0

    def test_recovered_entries_are_flagged_uncertain(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        recovery.recover()
        for entry in ftl.cache.entries():
            assert entry.dirty and entry.uip and entry.uncertain

    def test_run_directories_are_recovered(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        assert report.recovered_runs == ftl.gecko.num_runs
        assert ftl.gecko.num_runs >= 1

    def test_recovery_does_not_write_user_data(self, crashed_ftl):
        ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        total_writes = sum(step.page_writes for step in report.steps)
        assert total_writes == 0

    def test_total_duration_is_positive_and_additive(self, crashed_ftl):
        _ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        assert report.total_duration_us > 0
        assert report.total_duration_us == pytest.approx(
            sum(step.duration_us for step in report.steps))

    def test_as_rows_round_trips_steps(self, crashed_ftl):
        _ftl, _shadow, recovery = crashed_ftl
        report = recovery.recover()
        rows = report.as_rows()
        assert len(rows) == len(report.steps)
        assert rows[0][0] == "step1_bid"


class TestOperationAfterRecovery:
    def test_writes_and_reads_continue_correctly(self, crashed_ftl):
        ftl, shadow, recovery = crashed_ftl
        recovery.recover()
        run_random_updates(ftl, shadow, 3000, seed=31)
        mismatches = [logical for logical, payload in shadow.items()
                      if ftl.read(logical) != payload]
        assert mismatches == []

    def test_uncertain_flags_are_cleared_by_later_syncs(self, crashed_ftl):
        ftl, shadow, recovery = crashed_ftl
        recovery.recover()
        run_random_updates(ftl, shadow, 2000, seed=32)
        ftl.flush()
        assert all(not entry.uncertain for entry in ftl.cache.entries())

    def test_repeated_failures_preserve_data(self):
        ftl = build_ftl()
        fill_device(ftl)
        shadow = {logical: ("init", logical)
                  for logical in range(ftl.config.logical_pages)}
        for cycle in range(3):
            run_random_updates(ftl, shadow, 1500, seed=100 + cycle)
            recovery = GeckoRecovery(ftl)
            recovery.simulate_power_failure()
            recovery.recover()
            mismatches = [logical for logical, payload in shadow.items()
                          if ftl.read(logical) != payload]
            assert mismatches == [], f"data lost after crash cycle {cycle}"

    def test_failure_immediately_after_recovery(self):
        ftl = build_ftl()
        fill_device(ftl)
        shadow = {logical: ("init", logical)
                  for logical in range(ftl.config.logical_pages)}
        run_random_updates(ftl, shadow, 1000, seed=55)
        first = GeckoRecovery(ftl)
        first.simulate_power_failure()
        first.recover()
        second = GeckoRecovery(ftl)
        second.simulate_power_failure()
        second.recover()
        mismatches = [logical for logical, payload in shadow.items()
                      if ftl.read(logical) != payload]
        assert mismatches == []

    def test_failure_on_idle_device(self):
        ftl = build_ftl()
        recovery = GeckoRecovery(ftl)
        recovery.simulate_power_failure()
        report = recovery.recover()
        assert report.recovered_mapping_entries == 0
        assert ftl.read(0) is None
