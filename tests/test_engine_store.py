"""Tests for the result-store layer: SQLite store, routing, queries."""

import sqlite3

import pytest

from repro.engine import (ResultSink, SqliteResultStore,
                          STORE_SCHEMA_VERSION, SweepPlan, aggregate,
                          canonical_row_bytes, copy_rows, execute_task,
                          latency_table, load_results, open_store, run_sweep,
                          wa_breakdown_table)

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


def tiny_plan(**overrides):
    defaults = dict(ftls=["GeckoFTL", "DFTL"], devices=[dict(TINY)],
                    cache_capacities=[48], seeds=[1, 2],
                    write_operations=600, interval_writes=300)
    defaults.update(overrides)
    return SweepPlan(**defaults)


@pytest.fixture(scope="module")
def sweep_rows():
    """Real rows from one tiny sweep, shared across the module's tests."""
    return [execute_task(task) for task in tiny_plan().tasks()]


class TestOpenStore:
    def test_extension_routing(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.jsonl"), ResultSink)
        assert isinstance(open_store(tmp_path / "a.txt"), ResultSink)
        for suffix in (".sqlite", ".sqlite3", ".db", ".SQLITE"):
            store = open_store(tmp_path / f"a{suffix}")
            assert isinstance(store, SqliteResultStore)
            store.close()

    def test_kwargs_reach_the_store(self, tmp_path):
        store = open_store(tmp_path / "a.sqlite", batch_size=7)
        assert store.batch_size == 7
        store.close()


class TestSqliteRoundTrip:
    def test_rows_reproduce_appended_dicts_exactly(self, tmp_path,
                                                   sweep_rows):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            for row in sweep_rows:
                store.append(row)
            assert store.rows() == sweep_rows
        # And after close/reopen (a fresh process reading the file).
        reopened = SqliteResultStore(tmp_path / "r.sqlite")
        assert reopened.rows() == sweep_rows
        reopened.close()

    def test_crash_and_timed_rows_round_trip(self, tmp_path):
        plan = tiny_plan(ftls=["GeckoFTL"], seeds=[1], timing="slc")
        timed = run_sweep(plan).rows
        from repro.engine import CrashPlan
        crash_plan = tiny_plan(ftls=["GeckoFTL"], seeds=[1],
                               crash=CrashPlan(after_ops=300))
        crashed = run_sweep(crash_plan).rows
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            for row in timed + crashed:
                store.append(row)
            assert store.rows() == timed + crashed

    def test_awkward_values_stay_in_payload(self, tmp_path):
        # Values that don't round-trip through columns must survive via the
        # JSON payload: bools, None, nested structures, non-str keys'
        # shadow fields, and a non-geometry device dict.
        row = {"key": "abc", "ftl": True, "wa_total": None,
               "seed": [1, 2], "device": {"num_blocks": 64},
               "extra": {"nested": {"deep": 1.5}}}
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            store.append(row)
            assert store.rows() == [row]

    def test_int_and_float_affinity_preserved(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            store.append({"key": "a", "seed": 1, "wa_total": 2.0})
            (row,) = store.rows()
        assert isinstance(row["seed"], int)
        assert isinstance(row["wa_total"], float) and row["wa_total"] == 2.0

    def test_promoted_columns_are_populated(self, tmp_path, sweep_rows):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            store.append(sweep_rows[0])
            store.flush()
            ftl, blocks = store._connect().execute(
                'SELECT ftl, "num_blocks" FROM sweep_rows').fetchone()
        assert ftl == sweep_rows[0]["ftl"]
        assert blocks == TINY["num_blocks"]


class TestSqliteDurability:
    def test_batched_appends_commit_on_flush_and_close(self, tmp_path):
        path = tmp_path / "r.sqlite"
        store = SqliteResultStore(path, batch_size=100)
        for index in range(5):
            store.append({"key": f"k{index}"})
        store.close()  # partial batch must be committed here
        other = sqlite3.connect(path)
        assert other.execute(
            "SELECT COUNT(*) FROM sweep_rows").fetchone()[0] == 5
        other.close()

    def test_batch_boundary_commits_without_close(self, tmp_path):
        path = tmp_path / "r.sqlite"
        store = SqliteResultStore(path, batch_size=2)
        for index in range(4):
            store.append({"key": f"k{index}"})
        # Two full batches committed; a concurrent reader sees them even
        # though the store is still open (WAL, no per-row fsync needed).
        other = sqlite3.connect(path)
        assert other.execute(
            "SELECT COUNT(*) FROM sweep_rows").fetchone()[0] == 4
        other.close()
        store.close()

    def test_store_reopens_after_close(self, tmp_path):
        store = SqliteResultStore(tmp_path / "r.sqlite")
        store.append({"key": "a"})
        store.close()
        store.append({"key": "b"})
        store.close()
        assert [row["key"] for row in store.rows()] == ["a", "b"]

    def test_rejects_bad_batch_size(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteResultStore(tmp_path / "r.sqlite", batch_size=0)

    def test_rejects_future_schema_version(self, tmp_path):
        path = tmp_path / "r.sqlite"
        with SqliteResultStore(path) as store:
            store.append({"key": "a"})
        connection = sqlite3.connect(path)
        connection.execute("UPDATE store_meta SET value = ? "
                           "WHERE name = 'schema'",
                           (STORE_SCHEMA_VERSION + 1,))
        connection.commit()
        connection.close()
        with pytest.raises(ValueError, match="schema version"):
            SqliteResultStore(path).rows()


class TestResumeContract:
    def test_completed_keys_is_a_live_view(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            keys = store.completed_keys()
            assert len(keys) == 0
            store.append({"key": "a"})
            assert "a" in keys  # live: reflects the later append
            assert keys == {"a"}  # compares equal to plain sets

    def test_keys_found_in_payload_when_not_promoted(self, tmp_path):
        path = tmp_path / "r.sqlite"
        with SqliteResultStore(path) as store:
            # A key that fails promotion (not a str) never lands in the
            # column, but completed_keys must not invent it either.
            store.append({"key": 123})
            store.append({"key": "real"})
        assert set(SqliteResultStore(path).completed_keys()) == {"real"}

    def test_len_and_contains(self, tmp_path):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            store.append({"key": "a"})
            store.append({"key": "a"})
            store.append({"key": "b"})
            assert len(store) == 2
            assert "a" in store and "c" not in store


class TestQuery:
    @pytest.fixture()
    def store(self, tmp_path, sweep_rows):
        store = SqliteResultStore(tmp_path / "r.sqlite")
        for row in sweep_rows:
            store.append(row)
        yield store
        store.close()

    def test_where_filters_rows(self, store, sweep_rows):
        rows = store.query(where={"ftl": "DFTL"})
        assert rows == [row for row in sweep_rows if row["ftl"] == "DFTL"]

    def test_select_projects_fields(self, store, sweep_rows):
        rows = store.query(select=["ftl", "seed", "wa_total"])
        assert rows == [{"ftl": row["ftl"], "seed": row["seed"],
                         "wa_total": row["wa_total"]} for row in sweep_rows]

    def test_select_reaches_payload_and_device_fields(self, store,
                                                      sweep_rows):
        (row,) = store.query(select=["device.num_blocks", "index"],
                             where={"ftl": "GeckoFTL", "seed": 1})
        assert row["device.num_blocks"] == TINY["num_blocks"]
        assert row["index"] == 0

    def test_order_by_and_limit(self, store, sweep_rows):
        rows = store.query(select=["wa_total"], order_by="-wa_total",
                           limit=2)
        expected = sorted((row["wa_total"] for row in sweep_rows),
                          reverse=True)[:2]
        assert [row["wa_total"] for row in rows] == expected

    def test_invalid_field_names_rejected(self, store):
        for bad in ("1leading", "a;drop", "a b", "", "a..b"):
            with pytest.raises(ValueError, match="invalid field"):
                store.query(select=[bad])

    def test_query_on_missing_file_is_empty(self, tmp_path):
        store = SqliteResultStore(tmp_path / "absent.sqlite")
        assert store.query() == []
        assert store.rows() == []
        assert not (tmp_path / "absent.sqlite").exists()


class TestSqlAggregation:
    @pytest.fixture()
    def store(self, tmp_path, sweep_rows):
        store = SqliteResultStore(tmp_path / "r.sqlite")
        for row in sweep_rows:
            store.append(row)
        yield store
        store.close()

    def test_aggregate_table_matches_python_aggregate(self, store,
                                                      sweep_rows):
        sql_table = store.aggregate_table(by=("ftl",))
        python_table = aggregate(sweep_rows, by=("ftl",))
        assert len(sql_table) == len(python_table)
        for sql_entry, python_entry in zip(sql_table, python_table):
            assert set(sql_entry) == set(python_entry)
            for name, value in python_entry.items():
                if isinstance(value, float):
                    assert sql_entry[name] == pytest.approx(value,
                                                            rel=1e-12)
                else:
                    assert sql_entry[name] == value

    def test_group_order_is_first_appearance(self, store, sweep_rows):
        assert [entry["ftl"] for entry in store.aggregate_table()] == \
               [entry["ftl"] for entry in aggregate(sweep_rows)]

    def test_grouped_query_with_where(self, store, sweep_rows):
        table = store.query(select=["wa_total"], group_by=["ftl"],
                            where={"seed": 1})
        expected = aggregate(
            [row for row in sweep_rows if row["seed"] == 1],
            by=("ftl",), metrics=("wa_total",))
        assert table == expected

    def test_non_numeric_metrics_do_not_poison_averages(self, tmp_path):
        with SqliteResultStore(tmp_path / "mixed.sqlite") as store:
            store.append({"key": "a", "ftl": "X", "wa_total": 2.0})
            store.append({"key": "b", "ftl": "X", "wa_total": "broken"})
            (entry,) = store.aggregate_table(metrics=("wa_total",))
        # AVG over a TEXT value would otherwise count it as 0.0.
        assert entry["n"] == 2
        assert entry["wa_total_mean"] == 2.0

    def test_group_quantile_nearest_rank(self, tmp_path):
        with SqliteResultStore(tmp_path / "q.sqlite") as store:
            for position, value in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
                store.append({"key": f"k{position}", "ftl": "X",
                              "wa_total": value})
            (median,) = store.group_quantile("wa_total", q=0.5)
            (p99,) = store.group_quantile("wa_total", q=0.99)
            (floor,) = store.group_quantile("wa_total", q=0.0)
        assert median == {"ftl": "X", "n": 5, "wa_total_p50": 3.0}
        assert p99["wa_total_p99"] == 5.0
        assert floor["wa_total_p0"] == 1.0

    def test_group_quantile_rejects_out_of_range_q(self, store):
        with pytest.raises(ValueError):
            store.group_quantile("wa_total", q=1.5)


class TestCopyRowsAndLoadResults:
    def test_jsonl_to_sqlite_and_back_is_exact(self, tmp_path, sweep_rows):
        jsonl = ResultSink(tmp_path / "a.jsonl")
        for row in sweep_rows:
            jsonl.append(row)
        sqlite_store = SqliteResultStore(tmp_path / "b.sqlite")
        assert copy_rows(jsonl, sqlite_store) == len(sweep_rows)
        back = ResultSink(tmp_path / "c.jsonl")
        assert copy_rows(sqlite_store, back) == len(sweep_rows)
        sqlite_store.close()
        jsonl.close()
        back.close()
        # Exact equality — timing fields included — after two migrations.
        assert (tmp_path / "c.jsonl").read_bytes() == \
               (tmp_path / "a.jsonl").read_bytes()

    def test_load_results_accepts_stores_and_paths(self, tmp_path,
                                                   sweep_rows):
        with SqliteResultStore(tmp_path / "r.sqlite") as store:
            for row in sweep_rows:
                store.append(row)
            assert load_results(store) == sweep_rows
        assert load_results(tmp_path / "r.sqlite") == sweep_rows
        assert load_results(str(tmp_path / "r.sqlite")) == sweep_rows

    def test_aggregation_helpers_accept_stores_and_paths(self, tmp_path,
                                                         sweep_rows):
        path = tmp_path / "r.jsonl"
        with ResultSink(path) as sink:
            for row in sweep_rows:
                sink.append(row)
        assert aggregate(path) == aggregate(sweep_rows)
        assert wa_breakdown_table(str(path)) == wa_breakdown_table(sweep_rows)
        with open_store(path) as store:
            assert latency_table(store) == latency_table(sweep_rows)


class TestResultSinkCaching:
    """Regression: resume used to re-parse the JSONL per call."""

    def _populated(self, tmp_path, sweep_rows):
        path = tmp_path / "r.jsonl"
        with ResultSink(path) as sink:
            for row in sweep_rows:
                sink.append(row)
        return path

    def test_one_parse_per_sink_lifetime(self, tmp_path, sweep_rows):
        sink = ResultSink(self._populated(tmp_path, sweep_rows))
        assert sink.parse_count == 0
        sink.completed_keys()
        sink.rows()
        sink.completed_keys()
        sink.rows()
        assert sink.parse_count == 1

    def test_resume_parses_once(self, tmp_path, sweep_rows):
        plan = tiny_plan()
        path = tmp_path / "r.jsonl"
        run_sweep(plan.tasks()[:2], store=str(path))
        sink = ResultSink(path)
        from repro.engine import SweepExecutor
        report = SweepExecutor().run(plan, store=sink, resume=True)
        assert report.executed == 2 and report.skipped == 2
        assert sink.parse_count == 1
        sink.close()

    def test_completed_keys_is_a_live_view(self, tmp_path):
        sink = ResultSink(tmp_path / "r.jsonl")
        keys = sink.completed_keys()
        assert len(keys) == 0
        sink.append({"key": "a"})
        assert "a" in keys and keys == {"a"}
        sink.close()

    def test_rows_cache_tracks_appends(self, tmp_path):
        sink = ResultSink(tmp_path / "r.jsonl")
        sink.append({"key": "a"})
        assert [row["key"] for row in sink.rows()] == ["a"]
        sink.append({"key": "b"})
        assert [row["key"] for row in sink.rows()] == ["a", "b"]
        assert sink.parse_count == 1
        sink.close()


class TestStoreParity:
    """ISSUE acceptance: stores are interchangeable, bytes agree."""

    def test_same_plan_same_canonical_bytes_across_stores(self, tmp_path):
        plan = tiny_plan()
        run_sweep(plan, store=str(tmp_path / "a.jsonl"))
        run_sweep(plan, store=str(tmp_path / "b.sqlite"))
        jsonl = [canonical_row_bytes(row)
                 for row in load_results(tmp_path / "a.jsonl")]
        sqlite_rows = [canonical_row_bytes(row)
                       for row in load_results(tmp_path / "b.sqlite")]
        assert jsonl == sqlite_rows

    @pytest.mark.parametrize("first,second", [
        ("a.jsonl", "b.sqlite"), ("a.sqlite", "b.jsonl")])
    def test_resume_started_on_one_store_completes_on_other(
            self, tmp_path, first, second):
        plan = tiny_plan()
        tasks = plan.tasks()
        # Half the sweep lands in the first store...
        with open_store(tmp_path / first) as store:
            run_sweep(tasks[:2], store=store)
        # ...which is migrated to the other format, where resume finishes.
        with open_store(tmp_path / first) as source, \
                open_store(tmp_path / second) as destination:
            assert copy_rows(source, destination) == 2
        report = run_sweep(plan, store=str(tmp_path / second), resume=True)
        assert report.executed == 2 and report.skipped == 2
        finished = load_results(tmp_path / second)
        assert [row["key"] for row in finished] == \
               [task.key() for task in tasks]
