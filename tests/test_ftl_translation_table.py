"""Unit tests for the flash-resident translation table and the GMD."""

import pytest

from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose
from repro.ftl.block_manager import BlockManager, BlockType
from repro.ftl.translation_table import TranslationTable


@pytest.fixture
def setup():
    device = FlashDevice(simulation_configuration(num_blocks=32,
                                                  pages_per_block=8,
                                                  page_size=256))
    manager = BlockManager(device)
    table = TranslationTable(device, manager)
    return device, manager, table


class TestGeometry:
    def test_translation_page_of_follows_entries_per_page(self, setup):
        _device, _manager, table = setup
        entries = table.entries_per_page
        assert table.translation_page_of(0) == 0
        assert table.translation_page_of(entries - 1) == 0
        assert table.translation_page_of(entries) == 1

    def test_gmd_ram_bytes(self, setup):
        _device, _manager, table = setup
        assert table.gmd_ram_bytes == 4 * table.num_translation_pages


class TestReadsAndWrites:
    def test_lookup_before_any_write_is_none_and_free(self, setup):
        device, _manager, table = setup
        before = device.stats.page_reads
        assert table.lookup(5) is None
        assert device.stats.page_reads == before  # nothing to read yet

    def test_apply_updates_then_lookup(self, setup):
        _device, _manager, table = setup
        table.apply_updates(0, {3: PhysicalAddress(7, 2)})
        assert table.lookup(3) == PhysicalAddress(7, 2)

    def test_apply_updates_returns_old_and_new_content(self, setup):
        _device, _manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        old, new = table.apply_updates(0, {1: PhysicalAddress(2, 2)})
        assert old.entries[1] == PhysicalAddress(1, 1)
        assert new.entries[1] == PhysicalAddress(2, 2)

    def test_updates_are_out_of_place(self, setup):
        _device, manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        first_location = table.location_of(0)
        table.apply_updates(0, {2: PhysicalAddress(2, 2)})
        second_location = table.location_of(0)
        assert first_location != second_location
        assert manager.metadata_invalid_count(first_location.block) >= 1

    def test_old_entries_survive_partial_update(self, setup):
        _device, _manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        table.apply_updates(0, {2: PhysicalAddress(2, 2)})
        assert table.lookup(1) == PhysicalAddress(1, 1)

    def test_translation_pages_live_on_translation_blocks(self, setup):
        _device, manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        location = table.location_of(0)
        assert manager.block_type(location.block) is BlockType.TRANSLATION

    def test_io_is_charged_to_translation_purpose(self, setup):
        device, _manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        table.lookup(1)
        assert device.stats.total(IOKind.PAGE_WRITE, IOPurpose.TRANSLATION) == 1
        assert device.stats.total(IOKind.PAGE_READ, IOPurpose.TRANSLATION) >= 1


class TestMigrationAndRecovery:
    def test_migrate_translation_page_updates_gmd(self, setup):
        _device, manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        old_location = table.location_of(0)
        new_location = table.migrate_translation_page(old_location)
        assert table.location_of(0) == new_location
        assert new_location != old_location
        assert table.lookup(1) == PhysicalAddress(1, 1)

    def test_reset_ram_state_drops_gmd(self, setup):
        _device, _manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        table.reset_ram_state()
        assert table.location_of(0) is None

    def test_restore_gmd_roundtrip(self, setup):
        _device, _manager, table = setup
        table.apply_updates(0, {1: PhysicalAddress(1, 1)})
        saved = list(table.gmd)
        table.reset_ram_state()
        table.restore_gmd(saved)
        assert table.lookup(1) == PhysicalAddress(1, 1)

    def test_restore_gmd_rejects_wrong_length(self, setup):
        _device, _manager, table = setup
        with pytest.raises(ValueError):
            table.restore_gmd([None])
