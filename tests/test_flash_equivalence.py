"""Equivalence lock: the array-backed device reproduces the seed behavior.

The flash core's object-per-page model was replaced by array-backed columns;
this suite pins the refactor to the seed implementation's observable
behavior. The golden file (``tests/data/equivalence_golden.json``) was
generated *by the seed implementation* before the refactor and must never be
regenerated together with a device change — it is the ground truth that the
new core produces byte-identical IOStats and sweep rows.

Covered, on a randomized (seeded) 500-operation mixed trace:

* the full per-(kind, purpose) IOStats breakdown, host counters, and
  write-amplification of GeckoFTL and DFTL;
* the SHA-256 of the canonical (timing-stripped) sweep row of an
  end-to-end ``execute_task`` cell.

Regenerate (only when *intentionally* changing simulation semantics) with::

    PYTHONPATH=src python tests/test_flash_equivalence.py --regen
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path

from repro.core.gecko_ftl import GeckoFTL
from repro.engine.executor import execute_task
from repro.engine.plan import SweepTask, device_dict
from repro.engine.results import canonical_row_bytes
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.dftl import DFTL
from repro.ftl.operations import Operation, OpKind
from repro.workloads.base import fill_device

GOLDEN_PATH = Path(__file__).parent / "data" / "equivalence_golden.json"

TRACE_SEED = 20260729
TRACE_OPS = 500
#: Deliberately not a divisor of the op count so batches straddle intervals.
BATCH = 97


def _trace(logical_pages: int):
    """The randomized 500-op trace: 70% writes, 20% reads, 10% trims."""
    rng = random.Random(TRACE_SEED)
    operations = []
    for index in range(TRACE_OPS):
        logical = rng.randrange(logical_pages)
        roll = rng.random()
        if roll < 0.70:
            operations.append(Operation(OpKind.WRITE, logical,
                                        ("payload", logical, index)))
        elif roll < 0.90:
            operations.append(Operation(OpKind.READ, logical))
        else:
            operations.append(Operation(OpKind.TRIM, logical))
    return operations


def _stats_fingerprint(ftl_class, **ftl_kwargs):
    """Run the trace against a fresh FTL; return its observable IO totals."""
    config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                      page_size=256)
    ftl = ftl_class(FlashDevice(config), cache_capacity=64, **ftl_kwargs)
    fill_device(ftl)
    ftl.stats.reset()
    operations = _trace(config.logical_pages)
    submitted = 0
    for start in range(0, len(operations), BATCH):
        submitted += ftl.submit(operations[start:start + BATCH]).submitted
    assert submitted == TRACE_OPS
    stats = ftl.stats
    return {
        "breakdown": stats.breakdown(),
        "host_writes": stats.host_writes,
        "host_reads": stats.host_reads,
        "write_amplification": round(
            stats.write_amplification(config.delta), 10),
        "free_pages": ftl.device.free_page_count(),
        "written_pages": ftl.device.written_page_count(),
        "write_clock": ftl.device.write_clock,
    }


def _sweep_row_fingerprint():
    """SHA-256 of the canonical row of one end-to-end sweep cell."""
    task = SweepTask(
        ftl="GeckoFTL", workload="UniformRandomWrites",
        device=device_dict(num_blocks=64, pages_per_block=8, page_size=256),
        cache_capacity=64, seed=7, write_operations=600, interval_writes=200)
    row = execute_task(task)
    return hashlib.sha256(canonical_row_bytes(row)).hexdigest()


def compute_fingerprints():
    return {
        "gecko": _stats_fingerprint(GeckoFTL),
        "dftl": _stats_fingerprint(DFTL),
        "sweep_row_sha256": _sweep_row_fingerprint(),
    }


def test_trace_iostats_match_seed_golden():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = compute_fingerprints()
    assert current["gecko"] == golden["gecko"]
    assert current["dftl"] == golden["dftl"]


def test_sweep_row_bytes_match_seed_golden():
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    current = compute_fingerprints()
    assert current["sweep_row_sha256"] == golden["sweep_row_sha256"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("run with --regen to (re)write the golden file; doing so "
                 "together with a device change defeats the test's purpose")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_fingerprints(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
