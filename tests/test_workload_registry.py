"""Tests for the workload registry and WorkloadSpec."""

import pytest

from repro.workloads import (HotColdWrites, MixedReadWrite, OpKind,
                             SequentialWrites, StreamingTraceWorkload,
                             UniformRandomWrites, WorkloadSpec, ZipfianWrites,
                             record_trace, register_workload,
                             resolve_workload_name, workload_names)
from repro.workloads.base import Operation


class TestRegistry:
    def test_all_builtin_generators_are_registered(self):
        names = workload_names()
        for expected in ("UniformRandomWrites", "SequentialWrites",
                         "ZipfianWrites", "HotColdWrites", "MixedReadWrite",
                         "Trace"):
            assert expected in names

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        assert resolve_workload_name("uniform") == "UniformRandomWrites"
        assert resolve_workload_name("ZIPFIAN") == "ZipfianWrites"
        assert resolve_workload_name("hot-cold") == "HotColdWrites"
        assert resolve_workload_name("replay") == "Trace"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload_name("NopeWrites")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("UniformRandomWrites")(lambda pages: None)
        with pytest.raises(ValueError, match="already refers"):
            register_workload("SomethingNew", "uniform")(lambda pages: None)


class TestWorkloadSpec:
    def test_parse_bare_name(self):
        spec = WorkloadSpec.parse("SequentialWrites")
        assert spec.name == "SequentialWrites"
        assert spec.kwargs == {}

    def test_parse_with_arguments(self):
        spec = WorkloadSpec.parse("ZipfianWrites(theta=0.9, max_distinct=64)")
        assert spec.kwargs == {"theta": 0.9, "max_distinct": 64}
        assert str(spec) == "ZipfianWrites(max_distinct=64, theta=0.9)"

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="missing closing parenthesis"):
            WorkloadSpec.parse("ZipfianWrites(theta=0.9")
        with pytest.raises(ValueError, match="keyword arguments only"):
            WorkloadSpec.parse("ZipfianWrites(0.9)")
        with pytest.raises(ValueError, match="Python literal"):
            WorkloadSpec.parse("ZipfianWrites(theta=__import__('os'))")

    def test_of_coerces_strings_and_specs(self):
        spec = WorkloadSpec.parse("uniform")
        assert WorkloadSpec.of(spec) is spec
        assert WorkloadSpec.of("uniform") == spec
        with pytest.raises(TypeError):
            WorkloadSpec.of(42)

    def test_specs_are_hashable(self):
        a = WorkloadSpec.parse("ZipfianWrites(theta=0.9)")
        b = WorkloadSpec.parse("ZipfianWrites(theta=0.9)")
        assert len({a, b}) == 1


class TestBuild:
    def test_build_passes_pages_seed_and_kwargs(self):
        workload = WorkloadSpec.parse("ZipfianWrites(theta=0.5)").build(
            200, seed=9)
        assert isinstance(workload, ZipfianWrites)
        assert workload.logical_pages == 200
        assert workload.seed == 9
        assert workload.theta == 0.5

    def test_spec_seed_overrides_build_seed(self):
        workload = WorkloadSpec.parse("UniformRandomWrites(seed=3)").build(
            100, seed=77)
        assert workload.seed == 3

    def test_built_generators_are_deterministic(self):
        spec = WorkloadSpec.parse("UniformRandomWrites")
        first = list(spec.build(128, seed=5).operations(50))
        second = list(spec.build(128, seed=5).operations(50))
        assert first == second

    def test_mixed_read_write_nests_a_spec_string(self):
        workload = WorkloadSpec.parse(
            "MixedReadWrite(write='SequentialWrites', read_fraction=0.25)"
        ).build(100, seed=4)
        assert isinstance(workload, MixedReadWrite)
        assert isinstance(workload.write_workload, SequentialWrites)
        assert workload.read_fraction == 0.25
        assert workload.seed == 4
        # The inner workload is deterministically seeded but decorrelated
        # from the mixer's stream (same seed would couple the two RNGs).
        assert workload.write_workload.seed != 4
        again = WorkloadSpec.parse(
            "MixedReadWrite(write='SequentialWrites', read_fraction=0.25)"
        ).build(100, seed=4)
        assert again.write_workload.seed == workload.write_workload.seed

    def test_trace_workload_builds_from_path(self, tmp_path):
        path = tmp_path / "trace.txt"
        record_trace([Operation(OpKind.WRITE, i) for i in range(10)], path)
        workload = WorkloadSpec.parse(
            f"Trace(path='{path}', wrap=True)").build(16)
        assert isinstance(workload, StreamingTraceWorkload)
        assert workload.wrap is True
        operations = list(workload.operations(15))
        assert len(operations) == 15  # wrapped past the 10-line trace

    def test_trace_workload_requires_a_path(self):
        with pytest.raises(ValueError, match="needs a path"):
            WorkloadSpec.parse("Trace").build(16)

    def test_hotcold_factory_round_trip(self):
        workload = WorkloadSpec.parse(
            "HotColdWrites(hot_fraction=0.2, hot_probability=0.8)").build(
            100, seed=2)
        assert isinstance(workload, HotColdWrites)
        assert workload.hot_fraction == 0.2

    def test_uniform_factory_matches_direct_construction(self):
        built = WorkloadSpec.parse("UniformRandomWrites").build(64, seed=11)
        direct = UniformRandomWrites(64, seed=11)
        assert list(built.operations(40)) == list(direct.operations(40))
