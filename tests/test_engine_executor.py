"""Tests for the sweep executor: execution, backends, resume, determinism."""

import pytest

from repro.api import SimulationSession
from repro.engine import (ResultSink, SweepExecutor, SweepPlan, SweepTask,
                          SweepTaskError, canonical_row_bytes, execute_task,
                          run_sweep)

TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)


def tiny_plan(**overrides):
    defaults = dict(ftls=["GeckoFTL", "DFTL"], devices=[dict(TINY)],
                    cache_capacities=[48], seeds=[1, 2],
                    write_operations=600, interval_writes=300)
    defaults.update(overrides)
    return SweepPlan(**defaults)


class TestSessionFromTask:
    def test_builds_device_and_ftl_from_specs(self):
        task = tiny_plan().tasks()[0]
        with SimulationSession.from_task(task) as session:
            assert session.config.num_blocks == TINY["num_blocks"]
            assert session.ftl.name == "GeckoFTL"
            assert session.interval_writes == task.interval_writes
            assert session.ftl.cache.capacity == task.cache_capacity

    def test_spec_kwargs_override_task_cache(self):
        task = SweepTask(ftl="GeckoFTL(cache_capacity=24)",
                         workload="UniformRandomWrites", device=dict(TINY),
                         cache_capacity=48, seed=1, write_operations=100,
                         interval_writes=50)
        with SimulationSession.from_task(task) as session:
            assert session.ftl.cache.capacity == 24


class TestExecuteTask:
    def test_row_shape(self):
        task = tiny_plan().tasks()[0]
        row = execute_task(task)
        assert row["key"] == task.key()
        assert row["ftl"] == "GeckoFTL"
        assert row["derived_seed"] == task.derived_seed
        assert row["host_writes"] == task.write_operations
        assert row["wa_total"] >= 1.0
        assert row["wa_breakdown"]["user"] == pytest.approx(1.0, rel=1e-3)
        assert row["ram_bytes"] == sum(row["ram_breakdown"].values())
        assert row["elapsed_s"] > 0
        assert row["ops_per_sec"] > 0

    def test_rows_are_reproducible(self):
        task = tiny_plan().tasks()[0]
        assert (canonical_row_bytes(execute_task(task))
                == canonical_row_bytes(execute_task(task)))


class TestSweepExecutor:
    def test_runs_plan_in_order(self):
        plan = tiny_plan()
        report = SweepExecutor().run(plan)
        assert report.executed == len(plan) == 4
        assert report.skipped == 0
        assert [row["index"] for row in report.rows] == [0, 1, 2, 3]
        assert [row["ftl"] for row in report.rows] == \
               ["GeckoFTL", "GeckoFTL", "DFTL", "DFTL"]

    def test_progress_callback_sees_every_task(self):
        plan = tiny_plan()
        seen = []
        executor = SweepExecutor(
            on_task=lambda task, row, done, total: seen.append(
                (task.index, row["key"], done, total)))
        executor.run(plan)
        assert [entry[0] for entry in seen] == [0, 1, 2, 3]
        assert [entry[2] for entry in seen] == [1, 2, 3, 4]
        assert all(entry[3] == 4 for entry in seen)

    def test_failures_carry_task_context(self):
        # An impossible fill (trace referencing out-of-range pages) isn't
        # constructible here, so provoke a failure with a bad FTL kwarg that
        # only explodes at build time inside the worker path.
        task = SweepTask(ftl="GeckoFTL(cache_capacity=-5)",
                         workload="UniformRandomWrites", device=dict(TINY),
                         cache_capacity=48, seed=1, write_operations=100,
                         interval_writes=50)
        with pytest.raises(SweepTaskError, match="GeckoFTL"):
            SweepExecutor().run([task])

    def test_accepts_explicit_task_lists(self):
        tasks = tiny_plan().tasks()[:2]
        report = SweepExecutor().run(tasks)
        assert report.executed == 2


class TestLegacyShims:
    """The deprecated workers=/sink= spellings must keep working, loudly."""

    def test_workers_keyword_warns_and_maps_to_backend(self):
        with pytest.warns(DeprecationWarning, match="workers="):
            executor = SweepExecutor(workers=4)
        assert executor.workers == 4
        assert str(executor.backend) == "pool(workers=4)"
        with pytest.warns(DeprecationWarning):
            assert str(SweepExecutor(workers=1).backend) == "serial"

    def test_rejects_bad_worker_counts(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                SweepExecutor(workers=0)
        with pytest.raises(ValueError):
            SweepExecutor(0)

    def test_workers_and_backend_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            SweepExecutor("serial", workers=2)

    def test_int_backend_is_a_worker_count(self):
        assert str(SweepExecutor(1).backend) == "serial"
        assert str(SweepExecutor(3).backend) == "pool(workers=3)"

    def test_sink_keyword_warns_and_persists(self, tmp_path):
        plan = tiny_plan(ftls=["GeckoFTL"], seeds=[1])
        sink = ResultSink(tmp_path / "legacy.jsonl")
        with pytest.warns(DeprecationWarning, match="sink="):
            report = SweepExecutor().run(plan, sink=sink)
        sink.close()
        assert report.executed == 1
        assert len(sink.rows()) == 1

    def test_sink_and_store_conflict(self, tmp_path):
        sink = ResultSink(tmp_path / "a.jsonl")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="not both"):
                SweepExecutor().run(tiny_plan(), store=sink, sink=sink)

    def test_run_sweep_legacy_spellings(self, tmp_path):
        plan = tiny_plan(ftls=["GeckoFTL"], seeds=[1])
        path = tmp_path / "legacy.jsonl"
        with pytest.warns(DeprecationWarning):
            report = run_sweep(plan, workers=1, sink=str(path))
        assert report.executed == 1
        assert path.exists()


class TestResume:
    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="needs a store"):
            SweepExecutor().run(tiny_plan(), resume=True)

    def test_resume_skips_completed_tasks(self, tmp_path):
        plan = tiny_plan()
        store_path = tmp_path / "results.jsonl"
        first = run_sweep(plan, store=str(store_path))
        assert first.executed == 4 and first.skipped == 0

        second = run_sweep(plan, store=str(store_path), resume=True)
        assert second.executed == 0 and second.skipped == 4
        # The report still exposes the full grid, from persisted rows.
        assert [row["key"] for row in second.rows] == \
               [row["key"] for row in first.rows]
        # And the store did not grow.
        assert len(store_path.read_text().splitlines()) == 4

    def test_killed_sweep_reruns_only_missing_tasks(self, tmp_path):
        plan = tiny_plan()
        tasks = plan.tasks()
        store_path = tmp_path / "results.jsonl"
        # Simulate a sweep killed after two tasks.
        with ResultSink(store_path) as store:
            partial = SweepExecutor().run(tasks[:2], store=store)
        assert partial.executed == 2

        resumed = run_sweep(plan, store=str(store_path), resume=True)
        assert resumed.executed == 2
        assert resumed.skipped == 2
        executed_keys = {row["key"] for row in resumed.rows[2:]}
        assert executed_keys == {task.key() for task in tasks[2:]}


class TestDeterminismAcrossBackends:
    """Engine regression: the backend must never change results."""

    def test_serial_and_pool_produce_identical_canonical_rows(self):
        plan = tiny_plan()
        serial = SweepExecutor().run(plan)
        parallel = SweepExecutor("pool(workers=4)").run(plan)
        assert [canonical_row_bytes(row) for row in serial.rows] == \
               [canonical_row_bytes(row) for row in parallel.rows]

    def test_parallel_store_files_are_byte_identical_modulo_timing(
            self, tmp_path):
        plan = tiny_plan(seeds=[5])
        path_serial = tmp_path / "serial.jsonl"
        path_parallel = tmp_path / "parallel.jsonl"
        run_sweep(plan, store=str(path_serial))
        run_sweep(plan, backend="pool(workers=2)", store=str(path_parallel))
        from repro.engine import load_results
        serial = [canonical_row_bytes(r) for r in load_results(path_serial)]
        parallel = [canonical_row_bytes(r)
                    for r in load_results(path_parallel)]
        assert serial == parallel
