"""Unit and behavioural tests for GeckoFTL."""

import pytest

from repro.core.gecko_ftl import GeckoFTL, GeckoValidityStore
from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.stats import IOKind, IOPurpose
from repro.ftl.block_manager import BlockType
from repro.ftl.garbage_collector import VictimPolicy
from repro.workloads.base import fill_device
from repro.workloads.generators import UniformRandomWrites


@pytest.fixture
def ftl():
    config = simulation_configuration(num_blocks=96, pages_per_block=16,
                                      page_size=256)
    return GeckoFTL(FlashDevice(config), cache_capacity=128)


class TestBasicReadWrite:
    def test_read_of_never_written_page_is_none(self, ftl):
        assert ftl.read(17) is None

    def test_write_then_read(self, ftl):
        ftl.write(17, "payload")
        assert ftl.read(17) == "payload"

    def test_update_returns_newest_version(self, ftl):
        ftl.write(17, "v1")
        ftl.write(17, "v2")
        assert ftl.read(17) == "v2"

    def test_out_of_range_logical_rejected(self, ftl):
        with pytest.raises(ValueError):
            ftl.write(ftl.config.logical_pages, "x")
        with pytest.raises(ValueError):
            ftl.read(-1)

    def test_writes_land_on_user_blocks(self, ftl):
        address = ftl.write(3, "x")
        assert ftl.block_manager.block_type(address.block) is BlockType.USER

    def test_host_write_counted_once(self, ftl):
        ftl.write(1, "x")
        assert ftl.stats.host_writes == 1

    def test_trim_invalidates_mapping(self, ftl):
        ftl.write(9, "data")
        ftl.flush()
        ftl.trim(9)
        assert ftl.read(9) is None


class TestLazyInvalidIdentification:
    def test_write_miss_does_not_read_translation_table(self, ftl):
        fill_device(ftl)
        ftl.flush()
        # Force the mapping entry for page 0 out of the cache.
        ftl.cache.clear()
        reads_before = ftl.stats.total(IOKind.PAGE_READ, IOPurpose.TRANSLATION)
        ftl.write(0, "again")
        assert ftl.stats.total(IOKind.PAGE_READ,
                               IOPurpose.TRANSLATION) == reads_before

    def test_write_miss_sets_dirty_and_uip(self, ftl):
        ftl.cache.clear()
        ftl.write(5, "x")
        entry = ftl.cache.peek(5)
        assert entry.dirty and entry.uip

    def test_write_hit_reports_before_image_immediately(self, ftl):
        first = ftl.write(5, "x")
        updates_before = ftl.gecko.updates
        ftl.write(5, "y")
        assert ftl.gecko.updates == updates_before + 1
        assert first.page in ftl.gecko.gc_query(first.block)

    def test_uip_cleared_by_synchronization(self, ftl):
        ftl.write(5, "x")
        ftl.flush()
        ftl.cache.clear()
        ftl.write(5, "y")          # miss: dirty + UIP
        entry = ftl.cache.peek(5)
        assert entry.uip
        translation_page = ftl.cache.translation_page_of(5)
        ftl._synchronize_translation_page(translation_page)
        assert not entry.uip
        assert not entry.dirty

    def test_synchronization_identifies_flash_before_image(self, ftl):
        old_address = ftl.write(5, "x")
        ftl.flush()                 # flash now maps 5 -> old_address
        ftl.cache.clear()
        ftl.write(5, "y")           # miss: before-image unidentified
        assert old_address.page not in ftl.gecko.gc_query(old_address.block)
        ftl._synchronize_translation_page(ftl.cache.translation_page_of(5))
        assert old_address.page in ftl.gecko.gc_query(old_address.block)


class TestCheckpoints:
    def test_checkpoints_are_taken_periodically(self):
        config = simulation_configuration(num_blocks=96, pages_per_block=16,
                                          page_size=256)
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=64,
                       checkpoint_period=50)
        fill_device(ftl, fraction=0.3)
        for i in range(200):
            ftl.write(i % 50, i)
        assert ftl.checkpoints_taken >= 3

    def test_checkpoint_synchronizes_lingering_dirty_entries(self):
        config = simulation_configuration(num_blocks=96, pages_per_block=16,
                                          page_size=256)
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=256,
                       checkpoint_period=40)
        # Write one page, then keep writing others; the first page's dirty
        # entry lingers cold in the LRU queue until a checkpoint syncs it.
        ftl.write(700, "lingering")
        for i in range(120):
            ftl.write(i, i)
        entry = ftl.cache.peek(700)
        assert entry is not None
        assert not entry.dirty

    def test_checkpoint_period_defaults_to_cache_capacity(self, ftl):
        assert ftl.checkpoint_period == ftl.cache.capacity


class TestGarbageCollectionBehaviour:
    def test_gc_never_targets_metadata_blocks(self, ftl):
        fill_device(ftl)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=2)
        for operation in workload.operations(3000):
            ftl.write(operation.logical, operation.payload)
        assert ftl.garbage_collector.policy is VictimPolicy.METADATA_AWARE
        for candidate in ftl.garbage_collector._candidate_blocks():
            assert ftl.block_manager.block_type(candidate) is BlockType.USER

    def test_uip_pages_are_not_migrated(self, ftl):
        fill_device(ftl)
        # Rewrite a page so the old copy becomes a UIP, then force-collect
        # the block containing the old copy.
        ftl.flush()
        ftl.cache.clear()
        old_address = ftl.translation_table.lookup(10)
        ftl.write(10, "newer")      # miss: old copy is a UIP
        migrated_before = ftl.stats.total(IOKind.PAGE_WRITE, IOPurpose.GC)
        result = ftl.garbage_collector.collect_block(old_address.block)
        assert ftl.read(10) == "newer"
        assert result.victim_type is BlockType.USER

    def test_gc_preserves_all_data(self, ftl):
        fill_device(ftl)
        shadow = {}
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=4)
        for operation in workload.operations(4000):
            ftl.write(operation.logical, operation.payload)
            shadow[operation.logical] = operation.payload
        for logical, payload in shadow.items():
            assert ftl.read(logical) == payload


class TestValidityStoreAdapter:
    def test_adapter_delegates_to_gecko(self, ftl):
        store = ftl.validity_store
        assert isinstance(store, GeckoValidityStore)
        store.mark_invalid(PhysicalAddress(3, 7))
        assert store.invalid_offsets(3) == {7}
        store.note_erase(3)
        assert store.invalid_offsets(3) == set()

    def test_ram_bytes_delegates(self, ftl):
        assert ftl.validity_store.ram_bytes() == ftl.gecko.ram_bytes()


class TestReporting:
    def test_describe_includes_gecko_tuning(self, ftl):
        summary = ftl.describe()
        assert summary["ftl"] == "GeckoFTL"
        assert summary["size_ratio"] == 2
        assert "partition_factor" in summary

    def test_ram_breakdown_has_expected_components(self, ftl):
        breakdown = ftl.ram_breakdown()
        assert {"gmd", "lru_cache", "validity", "bvc"} <= set(breakdown)

    def test_write_amplification_positive_after_workload(self, ftl):
        fill_device(ftl)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=6)
        for operation in workload.operations(1000):
            ftl.write(operation.logical, operation.payload)
        assert ftl.write_amplification() >= 1.0
