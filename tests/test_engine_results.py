"""Tests for JSONL result sinks, schema handling, and aggregation helpers."""

import json

import pytest

from repro.engine.results import (LATENCY_FIELDS, SCHEMA_VERSION,
                                  TIMING_FIELDS, ResultSink, aggregate,
                                  canonical_row, canonical_row_bytes,
                                  latency_table, load_results,
                                  ram_breakdown_table, wa_breakdown_table)


def row(key, ftl="GeckoFTL", ratio=0.7, wa=2.0, ops=1000.0, **extra):
    data = {"schema": SCHEMA_VERSION, "key": key, "ftl": ftl,
            "device": {"logical_ratio": ratio}, "wa_total": wa,
            "ops_per_sec": ops, "ram_bytes": 1024, "elapsed_s": 0.5,
            "worker_pid": 1234,
            "wa_breakdown": {"user": 1.0, "gc": wa - 1.0},
            "ram_breakdown": {"cache": 1000, "gmd": 24}}
    data.update(extra)
    return data


class TestCanonicalRows:
    def test_timing_fields_are_stripped(self):
        stripped = canonical_row(row("k1"))
        for field in TIMING_FIELDS:
            assert field not in stripped
        assert stripped["wa_total"] == 2.0

    def test_canonical_bytes_ignore_timing_differences(self):
        fast = row("k1", elapsed_s=0.1, ops_per_sec=9999.0, worker_pid=1)
        slow = row("k1", elapsed_s=3.0, ops_per_sec=7.0, worker_pid=2)
        assert canonical_row_bytes(fast) == canonical_row_bytes(slow)
        assert canonical_row_bytes(fast) != canonical_row_bytes(row("k2"))


class TestResultSink:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with ResultSink(path) as sink:
            sink.append(row("k1"))
            sink.append(row("k2", ftl="DFTL"))
        loaded = load_results(path)
        assert [r["key"] for r in loaded] == ["k1", "k2"]
        assert loaded[1]["ftl"] == "DFTL"

    def test_reopen_reports_completed_keys(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with ResultSink(path) as sink:
            sink.append(row("k1"))
        reopened = ResultSink(path)
        assert reopened.completed_keys() == {"k1"}
        assert "k1" in reopened
        assert len(reopened) == 1
        reopened.append(row("k2"))
        reopened.close()
        assert ResultSink(path).completed_keys() == {"k1", "k2"}

    def test_missing_file_means_no_keys(self, tmp_path):
        sink = ResultSink(tmp_path / "absent.jsonl")
        assert sink.completed_keys() == set()
        assert sink.rows() == []

    def test_rows_reads_back_appended_rows(self, tmp_path):
        sink = ResultSink(tmp_path / "rows.jsonl")
        sink.append(row("k1"))
        assert [r["key"] for r in sink.rows()] == ["k1"]


class TestLoadResults:
    def test_rejects_future_schema(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 1,
                                    "key": "k"}) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            load_results(path)

    def test_rejects_malformed_json_with_line_number(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"schema": 1, "key": "k1"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            load_results(path)

    def test_rejects_non_object_rows(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_results(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"schema": 1, "key": "k1"}\n\n')
        assert len(load_results(path)) == 1


class TestAggregate:
    def rows(self):
        return [row("k1", ftl="GeckoFTL", wa=2.0, ops=1000.0),
                row("k2", ftl="GeckoFTL", wa=4.0, ops=3000.0),
                row("k3", ftl="DFTL", wa=3.0, ops=2000.0)]

    def test_group_by_ftl_mean_min_max(self):
        table = aggregate(self.rows(), by=("ftl",),
                          metrics=("wa_total", "ops_per_sec"))
        assert [entry["ftl"] for entry in table] == ["GeckoFTL", "DFTL"]
        gecko = table[0]
        assert gecko["n"] == 2
        assert gecko["wa_total_mean"] == pytest.approx(3.0)
        assert gecko["wa_total_min"] == pytest.approx(2.0)
        assert gecko["wa_total_max"] == pytest.approx(4.0)
        assert gecko["ops_per_sec_mean"] == pytest.approx(2000.0)

    def test_dotted_group_paths_reach_nested_fields(self):
        rows = [row("k1", ratio=0.5, wa=1.0), row("k2", ratio=0.5, wa=3.0),
                row("k3", ratio=0.7, wa=5.0)]
        table = aggregate(rows, by=("device.logical_ratio",),
                          metrics=("wa_total",))
        assert [entry["device.logical_ratio"] for entry in table] == [0.5, 0.7]
        assert table[0]["wa_total_mean"] == pytest.approx(2.0)

    def test_missing_metrics_do_not_contribute(self):
        rows = [row("k1"), {"key": "k2", "ftl": "GeckoFTL"}]
        table = aggregate(rows, by=("ftl",), metrics=("wa_total",))
        assert table[0]["n"] == 2  # n counts the group's rows...
        # ...but the metric summary only averages rows that carry it.
        assert table[0]["wa_total_mean"] == pytest.approx(2.0)


class TestBreakdownTables:
    def test_wa_breakdown_columns_are_rectangular(self):
        rows = [row("k1", ftl="GeckoFTL",
                    wa_breakdown={"user": 1.0, "validity": 0.1}),
                row("k2", ftl="DFTL", wa_breakdown={"user": 1.0})]
        table = wa_breakdown_table(rows)
        assert [entry["ftl"] for entry in table] == ["GeckoFTL", "DFTL"]
        # Both rows expose the union of purposes, zero-filled.
        for entry in table:
            assert set(entry) >= {"wa_user", "wa_validity", "wa_total"}
        assert table[1]["wa_validity"] == 0.0

    def test_wa_breakdown_averages_groups(self):
        rows = [row("k1", wa=2.0, wa_breakdown={"gc": 1.0}),
                row("k2", wa=4.0, wa_breakdown={"gc": 3.0})]
        table = wa_breakdown_table(rows)
        assert table[0]["wa_total"] == pytest.approx(3.0)
        assert table[0]["wa_gc"] == pytest.approx(2.0)

    def test_ram_breakdown_totals_components(self):
        rows = [row("k1", ram_breakdown={"cache": 100, "gmd": 20}),
                row("k2", ftl="DFTL", ram_breakdown={"cache": 50})]
        table = ram_breakdown_table(rows)
        gecko, dftl = table
        assert gecko["ram_bytes"] == pytest.approx(120.0)
        assert dftl["ram_gmd"] == 0.0
        assert dftl["ram_bytes"] == pytest.approx(50.0)


def timed_row(key, ftl="GeckoFTL", p99=1000.0, **extra):
    return row(key, ftl=ftl, throughput_ops_s=500.0, p50_us=100.0,
               p99_us=p99, p999_us=p99 * 2,
               latency={"mean_us": 150.0, "max_us": p99 * 3}, **extra)


class TestLatencyTable:
    def test_latency_fields_are_canonical(self):
        # Unlike the wall-clock fields, the virtual-time columns survive
        # canonicalization — they are part of the determinism guarantee.
        stripped = canonical_row(timed_row("k1"))
        for field in LATENCY_FIELDS:
            assert field in stripped
        assert set(LATENCY_FIELDS).isdisjoint(TIMING_FIELDS)

    def test_default_aggregate_metrics_cover_latency(self):
        table = aggregate([timed_row("k1", p99=1000.0),
                           timed_row("k2", p99=3000.0)])
        assert table[0]["p99_us_mean"] == pytest.approx(2000.0)
        assert table[0]["p999_us_max"] == pytest.approx(6000.0)
        assert table[0]["throughput_ops_s_mean"] == pytest.approx(500.0)

    def test_groups_and_averages(self):
        rows = [timed_row("k1", p99=1000.0), timed_row("k2", p99=3000.0),
                timed_row("k3", ftl="DFTL", p99=4000.0)]
        table = latency_table(rows)
        gecko, dftl = table
        assert gecko["ftl"] == "GeckoFTL" and gecko["n"] == 2
        assert gecko["p99_us"] == pytest.approx(2000.0)
        assert gecko["p999_us"] == pytest.approx(4000.0)
        assert gecko["mean_us"] == pytest.approx(150.0)
        assert gecko["max_us"] == pytest.approx(6000.0)
        assert dftl["n"] == 1

    def test_untimed_rows_and_groups_are_skipped(self):
        rows = [timed_row("k1"), row("k2"), row("k3", ftl="DFTL")]
        table = latency_table(rows)
        assert [entry["ftl"] for entry in table] == ["GeckoFTL"]
        assert table[0]["n"] == 1
        assert latency_table([row("k1")]) == []
