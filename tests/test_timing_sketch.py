"""Tests for the constant-memory streaming latency sketch."""

import random

import pytest

from repro.timing import LatencySketch
from repro.timing.sketch import (SUB_BUCKET_BITS, _bucket_lower_ns,
                                 _bucket_of)


class TestBucketMath:
    def test_small_values_exact(self):
        for ns in range(1 << SUB_BUCKET_BITS):
            assert _bucket_of(ns) == ns
            assert _bucket_lower_ns(ns) == ns

    def test_indices_monotone(self):
        previous = -1
        for ns in list(range(0, 4096)) + [10**6, 10**9, 10**12]:
            bucket = _bucket_of(ns)
            assert bucket >= previous
            previous = bucket

    def test_lower_bound_round_trips(self):
        # Every bucket's lower bound must map back to that bucket, and the
        # value just below it to an earlier bucket.
        for ns in [1, 31, 32, 33, 63, 64, 65, 1000, 12345, 10**6, 10**9]:
            bucket = _bucket_of(ns)
            lower = _bucket_lower_ns(bucket)
            assert _bucket_of(lower) == bucket
            assert lower <= ns
            if lower > 0:
                assert _bucket_of(lower - 1) < bucket

    def test_relative_error_bound(self):
        # Bucket width / lower bound <= 2^-SUB_BUCKET_BITS for large values.
        for ns in [100, 10**4, 10**7, 10**10]:
            bucket = _bucket_of(ns)
            lower = _bucket_lower_ns(bucket)
            upper = _bucket_lower_ns(bucket + 1)
            assert (upper - lower) / lower <= 2 ** -SUB_BUCKET_BITS + 1e-12


class TestLatencySketch:
    def test_empty_sketch(self):
        sketch = LatencySketch()
        assert sketch.count == 0
        assert sketch.mean_us == 0.0
        assert sketch.p99_us == 0.0
        assert sketch.quantile(0.5) == 0.0

    def test_exact_stats(self):
        sketch = LatencySketch()
        for value in [100.0, 200.0, 300.0]:
            sketch.record(value)
        assert sketch.count == 3
        assert sketch.sum_us == pytest.approx(600.0)
        assert sketch.mean_us == pytest.approx(200.0)
        assert sketch.min_us == 100.0
        assert sketch.max_us == 300.0

    def test_negative_values_clamp_to_zero(self):
        sketch = LatencySketch()
        sketch.record(-5.0)
        assert sketch.count == 1
        assert sketch.min_us == 0.0

    def test_quantiles_within_relative_error(self):
        rng = random.Random(7)
        values = sorted(rng.uniform(10.0, 50_000.0) for _ in range(5000))
        sketch = LatencySketch()
        for value in values:
            sketch.record(value)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = values[min(len(values) - 1,
                               max(0, int(q * len(values)) - 1))]
            approx = sketch.quantile(q)
            assert approx == pytest.approx(exact, rel=2 ** -SUB_BUCKET_BITS
                                           + 0.01)

    def test_quantiles_clamped_into_min_max(self):
        sketch = LatencySketch()
        sketch.record(777.0)
        for q in (0.0, 0.5, 1.0):
            assert sketch.quantile(q) == 777.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencySketch().quantile(1.5)

    def test_merge_equals_combined_stream(self):
        rng = random.Random(13)
        values = [rng.expovariate(1 / 500.0) for _ in range(2000)]
        left, right, combined = (LatencySketch(), LatencySketch(),
                                 LatencySketch())
        for index, value in enumerate(values):
            (left if index % 2 else right).record(value)
            combined.record(value)
        left.merge(right)
        # Bucket tables and extremes merge exactly; the running float sum
        # can differ in the last ulp from a different addition order.
        assert left._buckets == combined._buckets
        assert left.count == combined.count
        assert left.min_us == combined.min_us
        assert left.max_us == combined.max_us
        assert left.sum_us == pytest.approx(combined.sum_us, rel=1e-12)
        for q in (0.5, 0.99, 0.999):
            assert left.quantile(q) == combined.quantile(q)

    def test_reset(self):
        sketch = LatencySketch()
        sketch.record(42.0)
        sketch.reset()
        assert sketch == LatencySketch()

    def test_determinism_identical_streams(self):
        # Same values, same insertion order-independent structures.
        values = [3.14, 100.0, 99999.5, 0.001, 8.0] * 100
        one, two = LatencySketch(), LatencySketch()
        for value in values:
            one.record(value)
        for value in reversed(values):
            two.record(value)
        assert one.to_dict() == two.to_dict()
        assert one.summary() == two.summary()

    def test_summary_shape(self):
        sketch = LatencySketch()
        sketch.record(500.0)
        summary = sketch.summary()
        assert set(summary) == {"count", "mean_us", "min_us", "max_us",
                                "p50_us", "p99_us", "p999_us"}

    def test_constant_memory(self):
        # Millions of distinct magnitudes collapse into a bounded table.
        sketch = LatencySketch()
        rng = random.Random(3)
        for _ in range(20_000):
            sketch.record(rng.uniform(0.001, 3_600_000_000.0))
        assert len(sketch._buckets) < 2048
