"""Unit tests for the packed-column Gecko data plane.

Covers the :class:`EntryColumns` container itself (composite-key packing,
wide-bitmap spill, slicing, galloping merges, the erase-shadow sweep) and the
object-count regression the columnar rewrite exists for: a filled multi-level
Logarithmic Gecko instance holds O(runs + pages) Python objects — not
O(entries) — and neither ``reconstruct_bitmaps`` nor GeckoRec recovery
allocates a ``GeckoEntry`` per stored record.
"""

import gc
import random
import types

import pytest

from repro.core.gecko_entry import (
    EntryColumns,
    EntryLayout,
    GeckoEntry,
    merge_collision,
    merge_columns,
    merge_entry_lists,
    strip_obsolete_columns,
)
from repro.core.logarithmic_gecko import GeckoConfig, LogarithmicGecko
from repro.core.storage import InMemoryGeckoStorage


def make_gecko(pages_per_block=8, page_size=128, partition_factor=1):
    layout = EntryLayout(pages_per_block=pages_per_block, page_size=page_size,
                         partition_factor=partition_factor)
    return LogarithmicGecko(GeckoConfig(size_ratio=2, layout=layout),
                            storage=InMemoryGeckoStorage())


class TestCompositeKeys:
    def test_pack_unpack_roundtrip(self):
        layout = EntryLayout(pages_per_block=128, page_size=4096,
                             partition_factor=4)
        for block_id, sub_key in [(0, 0), (1, 3), (4096, 2), (2**31, 1)]:
            key = layout.pack_key(block_id, sub_key)
            assert layout.unpack_key(key) == (block_id, sub_key)

    def test_packed_order_equals_tuple_order(self):
        layout = EntryLayout(pages_per_block=128, page_size=4096,
                             partition_factor=4)
        pairs = [(b, s) for b in (0, 1, 2, 70) for s in range(4)]
        packed = [layout.pack_key(b, s) for (b, s) in sorted(pairs)]
        assert packed == sorted(packed)

    def test_unpartitioned_key_is_the_block_id(self):
        layout = EntryLayout(pages_per_block=32, page_size=512)
        assert layout.subkey_bits == 0
        assert layout.pack_key(17) == 17


class TestEntryColumns:
    def test_append_and_materialize_views(self):
        columns = EntryColumns(subkey_bits=1)
        columns.append((5 << 1) | 1, 0b1010, erase_flag=False)
        columns.append((9 << 1) | 0, 0, erase_flag=True)
        assert len(columns) == 2
        first, second = list(columns)
        assert (first.block_id, first.sub_key, first.bitmap) == (5, 1, 0b1010)
        assert second.block_id == 9 and second.erase_flag

    def test_getitem_int_and_slice(self):
        columns = EntryColumns.from_entries(
            [GeckoEntry(b, bitmap=b + 1) for b in range(10)])
        assert columns[3].block_id == 3
        middle = columns[2:5]
        assert isinstance(middle, EntryColumns)
        assert [entry.block_id for entry in middle] == [2, 3, 4]
        with pytest.raises(ValueError):
            columns[::2]

    def test_block_bounds_bisect(self):
        entries = [GeckoEntry(1, 0, bitmap=1), GeckoEntry(3, 0, bitmap=1),
                   GeckoEntry(3, 1, bitmap=1), GeckoEntry(7, 0, bitmap=1)]
        columns = EntryColumns.from_entries(entries, subkey_bits=1)
        lo, hi = columns.block_bounds(3)
        assert [columns.entry_at(i).block_id for i in range(lo, hi)] == [3, 3]
        lo, hi = columns.block_bounds(5)
        assert lo == hi

    def test_wide_bitmaps_spill_to_side_table(self):
        wide_bitmap = (1 << 127) | (1 << 64) | 0b11
        columns = EntryColumns(subkey_bits=0)
        columns.append(4, wide_bitmap)
        columns.append(5, 0b1)
        assert columns.wide == {0: wide_bitmap}
        assert columns.bitmap_at(0) == wide_bitmap
        assert columns.bitmap_at(1) == 0b1

    def test_wide_bitmaps_survive_slicing_and_copy(self):
        wide_bitmap = 1 << 100
        columns = EntryColumns(subkey_bits=0)
        for block_id in range(4):
            columns.append(block_id, wide_bitmap if block_id == 2 else 1)
        tail = columns[1:4]
        assert tail.bitmap_at(1) == wide_bitmap
        duplicate = columns.copy()
        duplicate.words[0] = 7
        assert columns.words[0] == 1
        assert duplicate.wide == columns.wide

    def test_wide_bitmaps_or_through_merges(self):
        newer = EntryColumns(subkey_bits=0)
        newer.append(2, 1 << 90)
        older = EntryColumns(subkey_bits=0)
        older.append(2, 0b1)
        merged = merge_columns(newer, older)
        assert merged.bitmap_at(0) == (1 << 90) | 0b1

    def test_offsets_above_bit_64_resolve(self):
        layout = EntryLayout(pages_per_block=128, page_size=4096)
        gecko = LogarithmicGecko(
            GeckoConfig(size_ratio=2, layout=layout),
            storage=InMemoryGeckoStorage())
        gecko.record_invalid(3, 100)
        gecko.record_invalid(3, 2)
        gecko.flush_buffer()
        assert gecko.gc_query(3) == {2, 100}

    def test_flagged_blocks_scan(self):
        columns = EntryColumns.from_entries(
            [GeckoEntry(1, bitmap=1), GeckoEntry(2, erase_flag=True),
             GeckoEntry(5, bitmap=2), GeckoEntry(9, erase_flag=True)])
        assert columns.flagged_blocks() == {2, 9}

    def test_extend_slice_rejects_mismatched_subkey_width(self):
        narrow = EntryColumns(subkey_bits=0)
        narrow.append(3, 1)
        wide_keys = EntryColumns(subkey_bits=2)
        with pytest.raises(ValueError, match="sub-key widths"):
            wide_keys.extend_slice(narrow, 0, 1)

    def test_without_blocks_sweep(self):
        columns = EntryColumns.from_entries(
            [GeckoEntry(b, bitmap=b) for b in (1, 2, 3, 5, 8, 9)])
        survivors = columns.without_blocks({2, 8, 100})
        assert [entry.block_id for entry in survivors] == [1, 3, 5, 9]
        assert [entry.bitmap for entry in survivors] == [1, 3, 5, 9]


class TestColumnMerges:
    def _naive_merge(self, newer, older, drop_block_erase_shadows=True):
        """The seed implementation's object-based two-pointer merge."""
        erased = {entry.block_id for entry in newer if entry.erase_flag}
        if drop_block_erase_shadows and erased:
            older = [entry for entry in older
                     if entry.block_id not in erased]
        result, i, j = [], 0, 0
        while i < len(newer) and j < len(older):
            a, b = newer[i], older[j]
            if a.sort_key == b.sort_key:
                result.append(merge_collision(a, b))
                i, j = i + 1, j + 1
            elif a.sort_key < b.sort_key:
                result.append(a.copy())
                i += 1
            else:
                result.append(b.copy())
                j += 1
        result.extend(entry.copy() for entry in newer[i:])
        result.extend(entry.copy() for entry in older[j:])
        return result

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("drop", [True, False])
    def test_galloping_merge_matches_seed_semantics(self, seed, drop):
        rng = random.Random(seed)

        def random_side():
            blocks = sorted(rng.sample(range(60), rng.randrange(1, 30)))
            return [GeckoEntry(block_id, 0, rng.randrange(256),
                               rng.random() < 0.2) for block_id in blocks]

        newer, older = random_side(), random_side()
        merged = merge_entry_lists(newer, older,
                                   drop_block_erase_shadows=drop)
        expected = self._naive_merge(newer, older,
                                     drop_block_erase_shadows=drop)
        assert [(e.sort_key, e.bitmap, e.erase_flag) for e in merged] \
            == [(e.sort_key, e.bitmap, e.erase_flag) for e in expected]

    def test_disjoint_ranges_bulk_copy(self):
        newer = EntryColumns.from_entries(
            [GeckoEntry(b, bitmap=1) for b in range(0, 50)])
        older = EntryColumns.from_entries(
            [GeckoEntry(b, bitmap=2) for b in range(100, 150)])
        merged = merge_columns(newer, older)
        assert len(merged) == 100
        assert merged.entry_at(0).bitmap == 1
        assert merged.entry_at(99).bitmap == 2

    def test_strip_clears_flags_and_drops_empty(self):
        columns = EntryColumns.from_entries(
            [GeckoEntry(1, bitmap=0, erase_flag=True),
             GeckoEntry(2, bitmap=0b1, erase_flag=True),
             GeckoEntry(3, bitmap=0b10)])
        stripped = strip_obsolete_columns(columns)
        assert [(e.block_id, e.bitmap, e.erase_flag) for e in stripped] \
            == [(2, 0b1, False), (3, 0b10, False)]

    def test_strip_without_flags_is_identity(self):
        columns = EntryColumns.from_entries(
            [GeckoEntry(1, bitmap=1), GeckoEntry(2, bitmap=2)])
        assert strip_obsolete_columns(columns) is columns

    def test_strip_drops_unflagged_empty_entries(self):
        # The documented contract (and the seed behavior) drops *any*
        # entry whose bitmap is empty, flagged or not.
        from repro.core.gecko_entry import strip_obsolete_in_largest_run
        stripped = strip_obsolete_in_largest_run(
            [GeckoEntry(1, bitmap=0, erase_flag=False),
             GeckoEntry(2, bitmap=0b1)])
        assert [entry.block_id for entry in stripped] == [2]

    def test_strip_keeps_wide_entries_with_zero_low_word(self):
        columns = EntryColumns(subkey_bits=0)
        columns.append(1, 1 << 64)          # low word is 0, bitmap is not
        columns.append(2, 0, erase_flag=True)
        stripped = strip_obsolete_columns(columns)
        assert [(e.block_id, e.bitmap) for e in stripped] == [(1, 1 << 64)]

    def test_gc_query_respects_a_chunks_own_packing_width(self):
        from repro.core.run import GeckoPagePayload, Run, RunPageInfo
        gecko = make_gecko(pages_per_block=8, partition_factor=4)
        assert gecko.layout.subkey_bits == 2
        # A compat payload infers width 0 from its entries; the query must
        # still find the entry by using the chunk's own packing.
        payload = GeckoPagePayload.from_entries(
            run_id=0, level=0, sequence=0, is_last=True,
            entries=(GeckoEntry(3, sub_key=0, bitmap=0b1),), manifest=(0,))
        address = gecko.storage.allocate()
        gecko.storage.write(address, payload)
        run = Run(run_id=0, level=0, num_entries=1, creation_timestamp=1)
        run.pages.append(RunPageInfo(address, (3, 0), (3, 0)))
        gecko.runs.add(run)
        assert gecko.gc_query(3) == {0}


# ----------------------------------------------------------------------
# Object-count regression: the point of the columnar rewrite
# ----------------------------------------------------------------------
def _reachable_objects(root):
    """Instances reachable from ``root``, excluding classes/modules/code."""
    skip = (type, types.ModuleType, types.FunctionType,
            types.BuiltinFunctionType, types.MethodType, types.CodeType)
    seen = {id(root)}
    stack = [root]
    reached = []
    while stack:
        obj = stack.pop()
        reached.append(obj)
        for ref in gc.get_referents(obj):
            if isinstance(ref, skip) or id(ref) in seen:
                continue
            seen.add(id(ref))
            stack.append(ref)
    return reached


@pytest.fixture
def entry_allocations(monkeypatch):
    """Count every GeckoEntry constructed while the fixture is active."""
    created = {"count": 0}
    original_init = GeckoEntry.__init__

    def counting_init(self, *args, **kwargs):
        created["count"] += 1
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(GeckoEntry, "__init__", counting_init)
    return created


class TestObjectCounts:
    def test_filled_instance_holds_o_runs_plus_pages_objects(self):
        gecko = make_gecko()
        rng = random.Random(11)
        for _ in range(20_000):
            gecko.record_invalid(rng.randrange(2048), rng.randrange(8))
        total_entries = (gecko.runs.total_entries() + len(gecko.buffer))
        pages = gecko.total_flash_pages()
        runs = gecko.num_runs
        # The bound only means something if the instance is entry-heavy.
        assert total_entries > 20 * (runs + pages)
        reached = _reachable_objects(gecko)
        assert not any(isinstance(obj, GeckoEntry) for obj in reached)
        # Generous per-page/per-run constant (payload, columns, directory
        # records, stored-page wrappers, buffered ints) — but nowhere near
        # one object per entry.
        budget = 40 * (runs + pages) + 4 * gecko.buffer.capacity + 500
        assert len(reached) < budget < total_entries + budget

    def test_reconstruct_bitmaps_allocates_no_entries(self, entry_allocations):
        gecko = make_gecko(partition_factor=2)
        rng = random.Random(5)
        for _ in range(3_000):
            if rng.random() < 0.05:
                gecko.record_erase(rng.randrange(300))
            else:
                gecko.record_invalid(rng.randrange(300), rng.randrange(8))
        entry_allocations["count"] = 0
        bitmaps = gecko.reconstruct_bitmaps()
        assert entry_allocations["count"] == 0
        assert any(bitmaps.values())

    def test_recovery_allocates_no_entries(self, entry_allocations):
        from repro.core.recovery import GeckoRecovery
        from repro.flash.config import simulation_configuration
        from repro.flash.device import FlashDevice
        from repro.core.gecko_ftl import GeckoFTL
        from repro.workloads.base import fill_device

        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=64)
        fill_device(ftl)
        rng = random.Random(23)
        for i in range(1_500):
            ftl.write(rng.randrange(config.logical_pages), ("p", i))
        recovery = GeckoRecovery(ftl)
        recovery.simulate_power_failure()
        entry_allocations["count"] = 0
        report = recovery.recover()
        assert entry_allocations["count"] == 0
        assert report.recovered_runs >= 1

    def test_merge_path_allocates_no_entries(self, entry_allocations):
        gecko = make_gecko()
        rng = random.Random(7)
        entry_allocations["count"] = 0
        for _ in range(5_000):
            gecko.record_invalid(rng.randrange(512), rng.randrange(8))
        assert gecko.merge_operations > 0
        assert entry_allocations["count"] == 0
