"""Tests for the optional numpy acceleration layer (repro.accel).

The contract: acceleration is opt-in (``REPRO_NUMPY`` / programmatic
override), numpy stays a soft dependency, and every accelerated call site
produces results identical to its pure-stdlib twin. The one accelerated
site today is the GC victim argmin in
:meth:`repro.ftl.garbage_collector.GarbageCollector.choose_victim`; this
module drives both paths over the same simulations and requires identical
victim sequences and end-to-end counters.
"""

import pytest

from repro import (
    IOStats,
    SimulationSession,
    UniformRandomWrites,
    simulation_configuration,
)
from repro.accel import get_numpy, numpy_enabled, set_numpy_enabled

numpy = pytest.importorskip("numpy")

#: Small but GC-heavy geometry: few blocks, so collections happen early.
TINY = dict(num_blocks=48, pages_per_block=8, page_size=256)

_STATS_SLOTS = ("page_read_counts", "page_write_counts",
                "block_erase_counts", "spare_read_counts",
                "spare_write_counts")


@pytest.fixture(autouse=True)
def restore_flag():
    """Leave the process-wide flag exactly as the environment defines it."""
    yield
    set_numpy_enabled(None)


class TestFlagResolution:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMPY", raising=False)
        set_numpy_enabled(None)
        assert get_numpy() is None
        assert not numpy_enabled()

    def test_environment_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMPY", "1")
        set_numpy_enabled(None)
        assert get_numpy() is numpy

    def test_programmatic_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMPY", "1")
        set_numpy_enabled(False)
        assert get_numpy() is None
        set_numpy_enabled(True)
        assert get_numpy() is numpy


def _run_cell(ftl: str, seed: int, writes: int = 3000):
    """One GC-heavy simulation; returns (stats, victim count, row)."""
    config = simulation_configuration(**TINY)
    with SimulationSession(ftl, device=config,
                           ftl_kwargs={"cache_capacity": 48}) as session:
        session.warmup()
        workload = UniformRandomWrites(session.config.logical_pages,
                                       seed=seed)
        session.run(workload, writes)
        collections = session.ftl.garbage_collector.collections
        stats = session.stats.snapshot()
        row = session.snapshot().row()
    return stats, collections, row


class TestArgminEquivalence:
    """numpy argmin and the stdlib fallback must be indistinguishable."""

    @pytest.mark.parametrize("ftl", ["GeckoFTL", "DFTL"])
    @pytest.mark.parametrize("seed", [7, 1234])
    def test_end_to_end_runs_identical(self, ftl, seed):
        set_numpy_enabled(False)
        stdlib_stats, stdlib_collections, stdlib_row = _run_cell(ftl, seed)
        set_numpy_enabled(True)
        assert numpy_enabled()
        numpy_stats, numpy_collections, numpy_row = _run_cell(ftl, seed)
        assert numpy_collections == stdlib_collections
        assert numpy_row == stdlib_row
        for slot in _STATS_SLOTS:
            assert getattr(numpy_stats, slot) == getattr(stdlib_stats, slot)
        assert numpy_stats.host_writes == stdlib_stats.host_writes

    def test_victim_sequences_identical(self):
        """Collect actual victim ids under both paths, not just totals."""
        sequences = []
        for enabled in (False, True):
            set_numpy_enabled(enabled)
            config = simulation_configuration(**TINY)
            with SimulationSession(
                    "GeckoFTL", device=config,
                    ftl_kwargs={"cache_capacity": 48}) as session:
                session.warmup()
                victims = []
                original = session.ftl.garbage_collector.collect_block

                def spy(victim, _original=original, _victims=victims):
                    _victims.append(victim)
                    return _original(victim)

                session.ftl.garbage_collector.collect_block = spy
                workload = UniformRandomWrites(
                    session.config.logical_pages, seed=11)
                session.run(workload, 2500)
                sequences.append(victims)
        assert sequences[0], "workload never triggered garbage collection"
        assert sequences[0] == sequences[1]
