"""Unit tests for the Block Validity Counter, garbage collector, and wear leveling."""

import pytest

from repro.flash.address import PhysicalAddress
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.block_manager import BlockType
from repro.ftl.bvc import BlockValidityCounter
from repro.ftl.dftl import DFTL
from repro.ftl.garbage_collector import VictimPolicy
from repro.ftl.wear_leveling import WearLeveler
from repro.core.gecko_ftl import GeckoFTL
from repro.workloads.base import fill_device
from repro.workloads.generators import UniformRandomWrites


class TestBlockValidityCounter:
    def test_increment_and_decrement(self):
        bvc = BlockValidityCounter(4, 8)
        bvc.increment(2)
        bvc.increment(2)
        bvc.decrement(2)
        assert bvc.valid_count(2) == 1

    def test_overflow_is_rejected(self):
        bvc = BlockValidityCounter(2, 2)
        bvc.increment(0, 2)
        with pytest.raises(ValueError):
            bvc.increment(0)

    def test_underflow_is_rejected(self):
        bvc = BlockValidityCounter(2, 2)
        with pytest.raises(ValueError):
            bvc.decrement(0)

    def test_set_count_validates_range(self):
        bvc = BlockValidityCounter(2, 4)
        bvc.set_count(1, 4)
        with pytest.raises(ValueError):
            bvc.set_count(1, 5)

    def test_victim_candidates_picks_minimum(self):
        bvc = BlockValidityCounter(4, 8)
        bvc.set_count(0, 5)
        bvc.set_count(1, 2)
        bvc.set_count(2, 7)
        assert bvc.victim_candidates([0, 1, 2]) == 1

    def test_victim_candidates_empty(self):
        assert BlockValidityCounter(2, 2).victim_candidates([]) is None

    def test_reset(self):
        bvc = BlockValidityCounter(2, 4)
        bvc.increment(0)
        bvc.reset()
        assert bvc.valid_count(0) == 0

    def test_ram_bytes_two_per_block(self):
        assert BlockValidityCounter(100, 8).ram_bytes == 200


class TestGarbageCollection:
    @pytest.fixture
    def ftl(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        ftl = DFTL(FlashDevice(config), cache_capacity=64)
        fill_device(ftl)
        return ftl

    def test_gc_keeps_the_device_writable(self, ftl):
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=5)
        for operation in workload.operations(3000):
            ftl.write(operation.logical, operation.payload)
        assert ftl.garbage_collector.collections > 0
        assert ftl.block_manager.free_block_count >= 1

    def test_gc_reclaims_space(self, ftl):
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=6)
        for operation in workload.operations(2000):
            ftl.write(operation.logical, operation.payload)
        results = ftl.garbage_collector.collect_until_safe()
        for result in results:
            assert result.reclaimed_pages >= 0

    def test_victims_are_never_active_blocks(self, ftl):
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=7)
        for operation in workload.operations(1500):
            ftl.write(operation.logical, operation.payload)
        victim = ftl.garbage_collector.choose_victim()
        assert victim is not None
        assert not ftl.block_manager.is_active(victim)

    def test_greedy_policy_prefers_fewest_valid_pages(self, ftl):
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=8)
        for operation in workload.operations(1500):
            ftl.write(operation.logical, operation.payload)
        collector = ftl.garbage_collector
        victim = collector.choose_victim()
        victim_cost = collector._victim_cost(victim)
        for candidate in collector._candidate_blocks():
            assert victim_cost <= collector._victim_cost(candidate)

    def test_metadata_aware_policy_skips_metadata_blocks(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=64,
                       victim_policy=VictimPolicy.METADATA_AWARE)
        fill_device(ftl)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=9)
        for operation in workload.operations(2000):
            ftl.write(operation.logical, operation.payload)
        collector = ftl.garbage_collector
        for candidate in collector._candidate_blocks():
            block_type = ftl.block_manager.block_type(candidate)
            assert block_type is BlockType.USER

    def test_fully_invalid_metadata_blocks_get_erased_for_free(self):
        config = simulation_configuration(num_blocks=64, pages_per_block=8,
                                          page_size=256)
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=64)
        fill_device(ftl)
        workload = UniformRandomWrites(ftl.config.logical_pages, seed=10)
        for operation in workload.operations(4000):
            ftl.write(operation.logical, operation.payload)
        # Metadata blocks that were reclaimed must have been reclaimed with
        # zero migrations under the metadata-aware policy.
        # (Indirect check: the collector never migrated a metadata page.)
        gc_stats = ftl.stats.breakdown().get("gc", {})
        assert ftl.garbage_collector.collections > 0
        assert gc_stats.get("page_write", 0) >= 0


class TestWearLeveling:
    def test_scan_advances_with_writes(self):
        config = simulation_configuration(num_blocks=8, pages_per_block=4,
                                          page_size=256)
        device = FlashDevice(config)
        leveler = WearLeveler(device)
        for _ in range(8):
            leveler.on_flash_write()
        assert device.stats.spare_reads == 8

    def test_global_erase_counter(self):
        config = simulation_configuration(num_blocks=8, pages_per_block=4,
                                          page_size=256)
        leveler = WearLeveler(FlashDevice(config))
        leveler.on_block_erase(0)
        leveler.on_block_erase(1)
        assert leveler.stats.global_erase_counter == 2

    def test_detects_unworn_block_with_static_data(self):
        config = simulation_configuration(num_blocks=4, pages_per_block=4,
                                          page_size=256)
        device = FlashDevice(config)
        leveler = WearLeveler(device, discrepancy_threshold=1.5)
        # Erase blocks 1-3 many times; block 0 stays unworn.
        for _ in range(6):
            for block in (1, 2, 3):
                device.write_page(PhysicalAddress(block, 0), "x")
                device.erase_block(block)
                leveler.on_block_erase(block)
        for _ in range(3 * config.num_blocks):
            leveler.on_flash_write()
        assert 0 in leveler.pending_victims
        assert leveler.pop_leveling_victim() == 0

    def test_ram_footprint_is_tiny(self):
        config = simulation_configuration()
        leveler = WearLeveler(FlashDevice(config))
        assert leveler.stats.ram_bytes <= 64

    def test_ftl_integration_charges_wear_purpose(self):
        config = simulation_configuration(num_blocks=32, pages_per_block=8,
                                          page_size=256)
        ftl = DFTL(FlashDevice(config), cache_capacity=64,
                   enable_wear_leveling=True)
        for logical in range(100):
            ftl.write(logical % ftl.config.logical_pages, logical)
        assert ftl.stats.breakdown().get("wear", {}).get("spare_read", 0) > 0
