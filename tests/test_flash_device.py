"""Unit tests for the flash device, blocks, pages, and NAND constraints."""

import pytest

from repro.flash.address import PhysicalAddress
from repro.flash.block import FlashBlock
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.flash.errors import (
    BlockWornOutError,
    InvalidAddressError,
    NonSequentialWriteError,
    ReadFreePageError,
    WriteToNonFreePageError,
)
from repro.flash.page import PageState, SpareArea
from repro.flash.stats import IOKind, IOPurpose


@pytest.fixture
def device():
    return FlashDevice(simulation_configuration(num_blocks=8,
                                                pages_per_block=4,
                                                page_size=256))


class TestAddressing:
    def test_linear_roundtrip(self):
        address = PhysicalAddress(3, 5)
        assert PhysicalAddress.from_linear(address.to_linear(16), 16) == address

    def test_linear_is_block_major(self):
        assert PhysicalAddress(2, 1).to_linear(8) == 17

    def test_str_is_compact(self):
        assert str(PhysicalAddress(1, 2)) == "P(1,2)"

    def test_out_of_range_block_rejected(self, device):
        with pytest.raises(InvalidAddressError):
            device.read_page(PhysicalAddress(100, 0))

    def test_out_of_range_page_rejected(self, device):
        with pytest.raises(InvalidAddressError):
            device.write_page(PhysicalAddress(0, 100), "x")


class TestWriteReadErase:
    def test_write_then_read_returns_data(self, device):
        address = PhysicalAddress(0, 0)
        device.write_page(address, "hello",
                          spare=SpareArea(logical_address=7))
        page = device.read_page(address)
        assert page.data == "hello"
        assert page.spare.logical_address == 7

    def test_read_of_free_page_is_an_error(self, device):
        with pytest.raises(ReadFreePageError):
            device.read_page(PhysicalAddress(0, 0))

    def test_overwrite_without_erase_is_an_error(self, device):
        address = PhysicalAddress(0, 0)
        device.write_page(address, "a")
        with pytest.raises(WriteToNonFreePageError):
            device.write_page(address, "b")

    def test_writes_must_be_sequential_within_block(self, device):
        with pytest.raises(NonSequentialWriteError):
            device.write_page(PhysicalAddress(0, 2), "skip")

    def test_erase_frees_all_pages(self, device):
        for offset in range(4):
            device.write_page(PhysicalAddress(1, offset), offset)
        device.erase_block(1)
        block = device.block(1)
        assert block.is_erased
        assert all(page.is_free for page in block.pages)

    def test_write_after_erase_is_allowed(self, device):
        address = PhysicalAddress(2, 0)
        device.write_page(address, "first")
        device.erase_block(2)
        device.write_page(address, "second")
        assert device.read_page(address).data == "second"

    def test_write_clock_monotonic_in_spare(self, device):
        spare_a = device.write_page(PhysicalAddress(0, 0), "a")
        spare_b = device.write_page(PhysicalAddress(0, 1), "b")
        assert spare_b.write_timestamp > spare_a.write_timestamp

    def test_spare_read_does_not_require_data_read(self, device):
        device.write_page(PhysicalAddress(0, 0), "a",
                          spare=SpareArea(logical_address=99))
        assert device.read_spare(PhysicalAddress(0, 0)).logical_address == 99

    def test_peek_charges_no_io(self, device):
        device.write_page(PhysicalAddress(0, 0), "a")
        before = device.stats.page_reads
        device.peek(PhysicalAddress(0, 0))
        assert device.stats.page_reads == before


class TestBlockLifetime:
    def test_block_wears_out(self):
        block = FlashBlock(block_id=0, pages_per_block=2, max_erase_count=3)
        for _ in range(3):
            block.erase()
        with pytest.raises(BlockWornOutError):
            block.erase()

    def test_remaining_lifetime_counts_down(self):
        block = FlashBlock(block_id=0, pages_per_block=2, max_erase_count=5)
        block.erase()
        block.erase()
        assert block.remaining_lifetime == 3

    def test_free_and_written_page_counts(self, device):
        device.write_page(PhysicalAddress(0, 0), "a")
        device.write_page(PhysicalAddress(0, 1), "b")
        block = device.block(0)
        assert block.written_pages == 2
        assert block.free_pages == 2

    def test_page_state_transitions(self, device):
        page = device.block(0).pages[0]
        assert page.state is PageState.FREE
        device.write_page(PhysicalAddress(0, 0), "a")
        assert page.state is PageState.WRITTEN


class TestFastPaths:
    """The tagged fast paths must charge and behave like the object API."""

    def test_write_page_tagged_stores_tags_and_charges(self, device):
        timestamp = device.write_page_tagged(
            PhysicalAddress(0, 0), data="payload", logical=11,
            block_type="user", payload={"k": 1}, purpose=IOPurpose.USER)
        assert timestamp == device.write_clock
        spare = device.peek(PhysicalAddress(0, 0)).spare
        assert spare.logical_address == 11
        assert spare.write_timestamp == timestamp
        assert spare.block_type == "user"
        assert spare.payload == {"k": 1}
        assert device.stats.total(IOKind.PAGE_WRITE, IOPurpose.USER) == 1

    def test_read_page_data_matches_read_page(self, device):
        device.write_page(PhysicalAddress(0, 0), "hello")
        assert device.read_page_data(PhysicalAddress(0, 0)) == "hello"
        assert device.stats.page_reads == 1

    def test_read_page_data_free_page_is_an_error(self, device):
        with pytest.raises(ReadFreePageError):
            device.read_page_data(PhysicalAddress(0, 0))

    def test_read_page_record_returns_data_and_logical(self, device):
        device.write_page_tagged(PhysicalAddress(1, 0), data="d", logical=42)
        assert device.read_page_record(PhysicalAddress(1, 0)) == ("d", 42)
        assert device.stats.page_reads == 1

    def test_read_spare_logical_charges_a_spare_read(self, device):
        device.write_page_tagged(PhysicalAddress(0, 0), logical=5)
        assert device.read_spare_logical(PhysicalAddress(0, 0)) == 5
        assert device.stats.spare_reads == 1

    def test_read_spare_logical_of_untagged_or_free_page(self, device):
        device.write_page(PhysicalAddress(0, 0), "x")
        assert device.read_spare_logical(PhysicalAddress(0, 0)) is None
        assert device.read_spare_logical(PhysicalAddress(0, 1)) is None

    def test_tagged_write_enforces_nand_constraints(self, device):
        device.write_page_tagged(PhysicalAddress(0, 0))
        with pytest.raises(WriteToNonFreePageError):
            device.write_page_tagged(PhysicalAddress(0, 0))
        with pytest.raises(NonSequentialWriteError):
            device.write_page_tagged(PhysicalAddress(0, 3))
        with pytest.raises(InvalidAddressError):
            device.write_page_tagged(PhysicalAddress(99, 0))


def _snapshot_container_objects(snapshot) -> int:
    """Python objects making up a snapshot's structure.

    Counts the per-block column buffers and the entries of the sparse
    payload dictionaries — i.e. everything the snapshot allocates.
    """
    total = 1
    for block in snapshot.blocks:
        total += 1            # the per-block snapshot record
        total += 4            # state / logical / timestamp / type_code
        total += 2            # the two sparse dictionaries
        total += len(block.data) + len(block.payload)
    return total


class TestFlashSnapshot:
    def test_snapshot_restore_roundtrip(self, device):
        device.write_page(PhysicalAddress(0, 0), "keep",
                          spare=SpareArea(logical_address=3))
        snapshot = device.snapshot_flash_state()
        device.write_page(PhysicalAddress(0, 1), "later")
        device.erase_block(1)
        clock_at_snapshot = snapshot.write_clock
        device.restore_flash_state(snapshot)
        assert device.write_clock == clock_at_snapshot
        assert device.read_page(PhysicalAddress(0, 0)).data == "keep"
        assert device.peek(PhysicalAddress(0, 1)).is_free
        assert device.block(1).erase_count == 0

    def test_snapshot_is_independent_of_later_writes(self, device):
        snapshot = device.snapshot_flash_state()
        device.write_page(PhysicalAddress(0, 0), "after")
        assert snapshot.blocks[0].next_free_offset == 0

    def test_restore_rejects_other_geometry(self, device):
        other = FlashDevice(simulation_configuration(num_blocks=4,
                                                     pages_per_block=4,
                                                     page_size=256))
        with pytest.raises(ValueError):
            device.restore_flash_state(other.snapshot_flash_state())

    def test_restore_rejects_same_blocks_different_pages(self, device):
        # Same block count but a different pages-per-block must be rejected,
        # not silently resize the column buffers.
        other = FlashDevice(simulation_configuration(num_blocks=8,
                                                     pages_per_block=8,
                                                     page_size=256))
        with pytest.raises(ValueError):
            device.restore_flash_state(other.snapshot_flash_state())

    def test_snapshot_objects_scale_with_blocks_not_pages(self):
        """Regression: snapshotting is O(pages) byte copies, O(blocks) objects.

        The historical failure mode is a per-page object walk (deep copy of
        a ``FlashPage``/``SpareArea`` graph). Payload-free devices with 8x
        more pages per block must snapshot into the exact same number of
        Python objects.
        """
        counts = {}
        for pages_per_block in (8, 64):
            config = simulation_configuration(num_blocks=16,
                                              pages_per_block=pages_per_block,
                                              page_size=256)
            device = FlashDevice(config)
            for block in range(config.num_blocks):
                for page in range(pages_per_block):
                    device.write_page_tagged(PhysicalAddress(block, page),
                                             logical=page)
            counts[pages_per_block] = _snapshot_container_objects(
                device.snapshot_flash_state())
        assert counts[8] == counts[64]

    def test_power_failure_does_not_deep_copy_payload_objects(self, device):
        """Regression: the power-failure path must not clone page payloads.

        Flash holds object *references*; a power failure (an array-snapshot
        round trip) must preserve identity — a deep copy of the device would
        be O(pages x objects) and would break payload identity.
        """
        payload = {"big": list(range(8))}
        device.write_page(PhysicalAddress(0, 0), payload)
        device.simulate_power_failure()
        assert device.read_page(PhysicalAddress(0, 0)).data is payload


class TestAccounting:
    def test_reads_and_writes_are_counted(self, device):
        device.write_page(PhysicalAddress(0, 0), "a", purpose=IOPurpose.USER)
        device.read_page(PhysicalAddress(0, 0), purpose=IOPurpose.GC)
        device.read_spare(PhysicalAddress(0, 0), purpose=IOPurpose.RECOVERY)
        device.erase_block(0, purpose=IOPurpose.GC)
        stats = device.stats
        assert stats.total(IOKind.PAGE_WRITE, IOPurpose.USER) == 1
        assert stats.total(IOKind.PAGE_READ, IOPurpose.GC) == 1
        assert stats.total(IOKind.SPARE_READ, IOPurpose.RECOVERY) == 1
        assert stats.total(IOKind.BLOCK_ERASE, IOPurpose.GC) == 1

    def test_free_and_written_page_totals(self, device):
        device.write_page(PhysicalAddress(0, 0), "a")
        total = device.config.physical_pages
        assert device.written_page_count() == 1
        assert device.free_page_count() == total - 1

    def test_power_failure_preserves_flash_contents(self, device):
        device.write_page(PhysicalAddress(0, 0), "survives")
        device.simulate_power_failure()
        assert device.read_page(PhysicalAddress(0, 0)).data == "survives"
