"""Tests for the FTL registry and FTLSpec parsing."""

import pytest

from repro.api import FTLSpec, ftl_names, get_ftl_factory, register_ftl
from repro.api.registry import RegistryView, resolve_ftl_name
from repro.core.gecko_ftl import GeckoFTL
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.dftl import DFTL
from repro.ftl.mu_ftl import MuFTL


def small_device():
    return FlashDevice(simulation_configuration(num_blocks=64,
                                                pages_per_block=8,
                                                page_size=256))


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ftl_names()) == {"DFTL", "LazyFTL", "uFTL", "IB-FTL",
                                    "GeckoFTL"}

    def test_factories_resolve_to_the_classes(self):
        assert get_ftl_factory("DFTL") is DFTL
        assert get_ftl_factory("GeckoFTL") is GeckoFTL

    def test_aliases_and_case_insensitivity(self):
        assert resolve_ftl_name("geckoftl") == "GeckoFTL"
        assert resolve_ftl_name("MuFTL") == "uFTL"
        assert get_ftl_factory("ibftl").name == "IB-FTL"
        assert get_ftl_factory("µ-FTL") is MuFTL

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown FTL 'NopeFTL'"):
            resolve_ftl_name("NopeFTL")

    def test_register_custom_ftl(self):
        @register_ftl("TestOnlyFTL", "test-only")
        class TestOnlyFTL(DFTL):
            name = "TestOnlyFTL"

        try:
            assert "TestOnlyFTL" in ftl_names()
            spec = FTLSpec.parse("test-only(cache_capacity=32)")
            assert spec.name == "TestOnlyFTL"
            ftl = spec.build(small_device())
            assert isinstance(ftl, TestOnlyFTL)
            assert ftl.cache.capacity == 32
        finally:
            from repro.api import registry
            registry._FACTORIES.pop("TestOnlyFTL", None)
            registry._ALIASES.pop("testonlyftl", None)
            registry._ALIASES.pop("test-only", None)

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_ftl("DFTL")(MuFTL)

    def test_registry_view_behaves_like_a_dict(self):
        view = RegistryView()
        assert set(view) == set(ftl_names())
        assert len(view) == len(ftl_names())
        assert view["GeckoFTL"] is GeckoFTL
        with pytest.raises(KeyError):
            view["NopeFTL"]


class TestFTLSpec:
    def test_bare_name(self):
        spec = FTLSpec.parse("GeckoFTL")
        assert spec.name == "GeckoFTL"
        assert spec.kwargs == {}
        assert str(spec) == "GeckoFTL"

    def test_name_with_kwargs(self):
        spec = FTLSpec.parse(
            "GeckoFTL(cache_capacity=2048, multiway_merge=True)")
        assert spec.kwargs == {"cache_capacity": 2048,
                               "multiway_merge": True}
        assert str(spec) == "GeckoFTL(cache_capacity=2048, multiway_merge=True)"

    def test_parse_normalizes_aliases(self):
        assert FTLSpec.parse("muftl").name == "uFTL"

    def test_of_accepts_spec_string_and_spec(self):
        spec = FTLSpec("DFTL")
        assert FTLSpec.of(spec) is spec
        assert FTLSpec.of("DFTL") == spec
        with pytest.raises(TypeError):
            FTLSpec.of(42)

    def test_build_applies_defaults_under_spec_kwargs(self):
        spec = FTLSpec.parse("DFTL(cache_capacity=32)")
        ftl = spec.build(small_device(), cache_capacity=512)
        assert ftl.cache.capacity == 32
        bare = FTLSpec.parse("DFTL").build(small_device(), cache_capacity=512)
        assert bare.cache.capacity == 512

    def test_with_defaults(self):
        spec = FTLSpec.parse("DFTL(cache_capacity=32)")
        merged = spec.with_defaults(cache_capacity=512, free_block_threshold=8)
        assert merged.kwargs == {"cache_capacity": 32,
                                 "free_block_threshold": 8}

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="missing closing parenthesis"):
            FTLSpec.parse("GeckoFTL(cache_capacity=2048")
        with pytest.raises(ValueError, match="missing FTL name"):
            FTLSpec.parse("(cache_capacity=2048)")
        with pytest.raises(ValueError, match="keyword arguments only"):
            FTLSpec.parse("GeckoFTL(2048)")
        with pytest.raises(ValueError, match="malformed FTL argument"):
            FTLSpec.parse("GeckoFTL(cache_capacity=)")
        with pytest.raises(ValueError, match="must be a Python literal"):
            FTLSpec.parse("GeckoFTL(cache_capacity=__import__('os'))")

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown FTL"):
            FTLSpec("NopeFTL")

    def test_specs_are_hashable(self):
        specs = {FTLSpec("DFTL"), FTLSpec("dftl"),
                 FTLSpec("DFTL", {"cache_capacity": 64})}
        assert len(specs) == 2
        assert FTLSpec("DFTL") in specs

    def test_kwargs_may_hold_non_literal_values(self):
        from repro.ftl.garbage_collector import VictimPolicy
        spec = FTLSpec("DFTL", {"victim_policy": VictimPolicy.GREEDY})
        ftl = spec.build(small_device(), cache_capacity=64)
        assert ftl.garbage_collector.policy is VictimPolicy.GREEDY
