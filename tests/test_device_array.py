"""Tests for the multi-device data plane (repro.flash.device_array).

The load-bearing property: a ``DeviceArray(n=N)`` session's merged counters
must equal — exactly, counter for counter — what N independent
single-device sessions record when each replays the subsequence of the
host trace landing in its LPN range. Everything else (spec parsing, front
door routing, sweep rows) hangs off that contract.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DeviceArray,
    DeviceArraySession,
    IOStats,
    SimulationSession,
    SweepPlan,
    UniformRandomWrites,
    run_sweep,
    simulation_configuration,
)
from repro.engine.plan import SweepTask, device_dict
from repro.flash.device_array import format_array_spec, parse_array_spec
from repro.ftl.operations import Operation, OpKind

#: Shard geometry small enough for property tests to iterate quickly.
TINY = dict(num_blocks=64, pages_per_block=8, page_size=256)

_STATS_SLOTS = ("page_read_counts", "page_write_counts",
                "block_erase_counts", "spare_read_counts",
                "spare_write_counts")


def tiny_config():
    return simulation_configuration(**TINY)


def assert_stats_equal(lhs: IOStats, rhs: IOStats) -> None:
    for slot in _STATS_SLOTS:
        assert getattr(lhs, slot) == getattr(rhs, slot), slot
    assert lhs.host_writes == rhs.host_writes
    assert lhs.host_reads == rhs.host_reads


class TestSpecParsing:
    def test_minimal_spec(self):
        device = parse_array_spec("array(n=4)")
        assert device["array_shards"] == 4
        base = simulation_configuration()
        assert device["num_blocks"] == base.num_blocks

    def test_spec_with_geometry_overrides(self):
        device = parse_array_spec(
            "array(n=2, num_blocks=96, pages_per_block=64)")
        assert device["array_shards"] == 2
        assert device["num_blocks"] == 96
        assert device["pages_per_block"] == 64

    def test_shards_alias(self):
        assert parse_array_spec("array(shards=3)")["array_shards"] == 3

    def test_round_trip_through_format(self):
        device = parse_array_spec("array(n=2, num_blocks=96)")
        assert parse_array_spec(format_array_spec(device)) == device

    @pytest.mark.parametrize("bad", [
        "array()",                      # no shard count
        "array(n=0)",                   # must be >= 1
        "array(n=2, bogus=1)",          # unknown field
        "array(n=2, num_blocks)",       # malformed argument
        "notanarray(n=2)",              # wrong prefix
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_array_spec(bad)


class TestDeviceArray:
    def test_address_routing(self):
        array = DeviceArray(tiny_config(), shards=4)
        pages = array.pages_per_shard
        assert array.logical_pages == 4 * pages
        assert array.shard_of(0) == 0
        assert array.shard_of(pages - 1) == 0
        assert array.shard_of(pages) == 1
        assert array.local_address(pages) == 0
        assert array.shard_of(4 * pages - 1) == 3
        with pytest.raises(ValueError):
            array.shard_of(4 * pages)
        with pytest.raises(ValueError):
            array.shard_of(-1)

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            DeviceArray(tiny_config(), shards=0)

    def test_merged_stats_is_elementwise_sum(self):
        array = DeviceArray(tiny_config(), shards=2)
        from repro.flash.address import PhysicalAddress
        array.shards[0].write_page_tagged(PhysicalAddress(0, 0), 0)
        array.shards[1].write_page_tagged(PhysicalAddress(0, 0), 0)
        array.shards[1].write_page_tagged(PhysicalAddress(0, 1), 1)
        assert array.stats.page_writes == 3
        assert array.shard_stats()[0].page_writes == 1
        assert array.shard_stats()[1].page_writes == 2


class TestFrontDoorRouting:
    def test_spec_string_routes_to_array_session(self):
        with SimulationSession("GeckoFTL", device="array(n=2)") as session:
            assert isinstance(session, DeviceArraySession)
            assert len(session.sessions) == 2

    def test_device_dict_with_array_shards_routes(self):
        device = {**TINY, "array_shards": 2}
        with SimulationSession("GeckoFTL", device=device) as session:
            assert isinstance(session, DeviceArraySession)

    def test_ready_device_array_routes(self):
        array = DeviceArray(tiny_config(), shards=3)
        with SimulationSession("GeckoFTL", device=array) as session:
            assert isinstance(session, DeviceArraySession)
            assert session.array is array

    def test_plain_sessions_unaffected(self):
        with SimulationSession("GeckoFTL", device=tiny_config()) as session:
            assert type(session) is SimulationSession

    def test_bogus_string_still_type_error(self):
        with pytest.raises(TypeError):
            SimulationSession("GeckoFTL", device="not-a-device")

    def test_timing_rejected(self):
        with pytest.raises(ValueError, match="single-device"):
            SimulationSession("GeckoFTL", device="array(n=2)", timing="slc")

    def test_obs_rejected(self):
        with pytest.raises(ValueError, match="single-device"):
            SimulationSession("GeckoFTL", device="array(n=2)", obs="trace")

    def test_built_ftl_rejected(self):
        from repro import GeckoFTL, FlashDevice
        ftl = GeckoFTL(FlashDevice(tiny_config()), cache_capacity=32)
        with pytest.raises(TypeError, match="per shard"):
            SimulationSession(ftl, device="array(n=2)")

    def test_crash_and_recover_rejected(self):
        with SimulationSession("GeckoFTL", device="array(n=2)") as session:
            with pytest.raises(NotImplementedError):
                session.crash()
            with pytest.raises(NotImplementedError):
                session.recover()


def _sharded_replay(shards, operations, pages_per_shard, ftl="GeckoFTL",
                    cache=64):
    """N independent single-device sessions, each fed its LPN subsequence."""
    singles = [SimulationSession(ftl, device=tiny_config(),
                                 ftl_kwargs={"cache_capacity": cache})
               for _ in range(shards)]
    for session in singles:
        session.warmup()
    for index, session in enumerate(singles):
        subsequence = [
            Operation(op.kind, op.logical - index * pages_per_shard,
                      op.payload)
            for op in operations
            if op.logical // pages_per_shard == index]
        if subsequence:
            session.submit(subsequence)
    return singles


class TestMergedStatsEquivalence:
    """The ISSUE's acceptance property, as a hypothesis test over seeds."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_array_equals_independent_sessions(self, seed):
        shards = 4
        array_session = SimulationSession(
            "GeckoFTL", device=f"array(n={shards}, "
            f"num_blocks={TINY['num_blocks']}, "
            f"pages_per_block={TINY['pages_per_block']}, "
            f"page_size={TINY['page_size']})",
            ftl_kwargs={"cache_capacity": 64})
        array_session.warmup()
        workload = UniformRandomWrites(array_session.config.logical_pages,
                                       seed=seed)
        operations = list(workload.operations(600))
        singles = _sharded_replay(shards, operations,
                                  array_session.array.pages_per_shard)
        array_session.submit(operations)
        merged = IOStats.merged(session.stats for session in singles)
        assert_stats_equal(array_session.stats, merged)
        for shard_session, single in zip(array_session.sessions, singles):
            assert_stats_equal(shard_session.stats, single.stats)

    def test_run_matches_submit_accounting(self):
        with SimulationSession("GeckoFTL", device="array(n=2)",
                               interval_writes=500) as session:
            session.warmup()
            workload = UniformRandomWrites(session.config.logical_pages,
                                           seed=3)
            result = session.run(workload, 1200)
        assert result.operations_executed == 1200
        assert result.host_writes == 1200
        assert [m.host_writes for m in result.intervals] == [500, 500, 200]


class TestHostIO:
    def test_read_write_trim_route_across_shards(self):
        with SimulationSession("GeckoFTL", device="array(n=2)") as session:
            pages = session.array.pages_per_shard
            session.write(1, data="shard0")
            session.write(pages + 1, data="shard1")
            assert session.read(1) == "shard0"
            assert session.read(pages + 1) == "shard1"
            assert session.sessions[0].stats.host_writes == 1
            assert session.sessions[1].stats.host_writes == 1
            session.trim(pages + 1)
            assert session.read(pages + 1) is None

    def test_submit_collect_payloads_preserves_order(self):
        with SimulationSession("GeckoFTL", device="array(n=2)") as session:
            pages = session.array.pages_per_shard
            logicals = [pages + 5, 3, pages + 1, 7]
            session.submit([Operation(OpKind.WRITE, logical,
                                      f"v{logical}")
                            for logical in logicals])
            result = session.submit(
                [Operation(OpKind.READ, logical) for logical in logicals],
                collect_payloads=True)
            assert result.payloads == [f"v{logical}" for logical in logicals]

    def test_warmup_fills_every_shard(self):
        session = SimulationSession("GeckoFTL", device="array(n=3)")
        pages = session.warmup(reset_stats=False)
        assert pages == session.config.logical_pages
        for shard_session in session.sessions:
            assert shard_session.stats.host_writes \
                == session.array.pages_per_shard


class TestSnapshotAndRows:
    def test_snapshot_carries_shard_breakdowns(self):
        with SimulationSession("GeckoFTL", device="array(n=2)") as session:
            session.warmup()
            workload = UniformRandomWrites(session.config.logical_pages,
                                           seed=9)
            session.run(workload, 800)
            snapshot = session.snapshot()
        assert snapshot.shards is not None and len(snapshot.shards) == 2
        assert sum(shard["host_writes"] for shard in snapshot.shards) == 800
        assert snapshot.ftl_description["array_shards"] == 2
        row = snapshot.row()
        assert row["array_shards"] == 2
        assert row["shard_wa_max"] >= snapshot.write_amplification or \
            row["shard_wa_max"] == pytest.approx(
                snapshot.write_amplification, rel=0.05)

    def test_plain_snapshot_rows_unchanged(self):
        with SimulationSession("GeckoFTL", device=tiny_config()) as session:
            session.warmup()
            row = session.snapshot().row()
        assert "array_shards" not in row
        assert "shard_wa_max" not in row


class TestSweepIntegration:
    def test_device_dict_accepts_spec_string(self):
        device = device_dict("array(n=2, num_blocks=96)")
        assert device["array_shards"] == 2
        assert device["num_blocks"] == 96
        assert list(device)[-1] == "array_shards"

    def test_device_dict_single_device_shape_unchanged(self):
        assert "array_shards" not in device_dict(num_blocks=96)

    def test_task_routing_and_row_columns(self):
        task = SweepTask(ftl="GeckoFTL", workload="UniformRandomWrites",
                         device="array(n=2)", cache_capacity=64, seed=1,
                         write_operations=400, interval_writes=200)
        assert task.device["array_shards"] == 2
        from repro.engine.executor import execute_task
        row = execute_task(task)
        assert row["array_shards"] == 2
        assert len(row["shards"]) == 2
        assert sum(shard["host_writes"] for shard in row["shards"]) \
            == row["host_writes"]

    def test_rows_byte_identical_across_worker_counts(self):
        plan = SweepPlan(ftls=["GeckoFTL"],
                         workloads=["UniformRandomWrites"],
                         devices=["array(n=2)"], cache_capacities=[64],
                         seeds=[42], write_operations=400,
                         interval_writes=200)
        volatile = ("elapsed_s", "wall_seconds", "ops_per_sec", "worker_pid")

        def canonical(row):
            return json.dumps({key: value for key, value in row.items()
                               if key not in volatile}, sort_keys=True)

        serial = run_sweep(plan, backend="serial")
        pooled = run_sweep(plan, backend="pool(workers=2)")
        assert [canonical(row) for row in serial.rows] \
            == [canonical(row) for row in pooled.rows]

    def test_crash_plans_rejected_for_arrays(self):
        task = SweepTask(ftl="GeckoFTL", workload="UniformRandomWrites",
                         device="array(n=2)", cache_capacity=64, seed=1,
                         write_operations=400, interval_writes=200,
                         crash="after_ops=100")
        from repro.engine.executor import execute_task
        with pytest.raises(ValueError, match="single-device"):
            execute_task(task)
