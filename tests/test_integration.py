"""Integration tests spanning FTLs, workloads, the harness, and recovery.

These exercise the scenarios the paper's evaluation is built on end to end:
sustained random-update traffic over a full device with garbage collection,
head-to-head FTL comparisons, and crash/recover cycles under load.
"""

import random


from repro.bench.harness import ExperimentConfig, compare_ftls, run_experiment
from repro.core.gecko_ftl import GeckoFTL
from repro.core.recovery import GeckoRecovery
from repro.flash.config import simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.dftl import DFTL
from repro.ftl.mu_ftl import MuFTL
from repro.workloads.base import WorkloadRunner, fill_device
from repro.workloads.generators import (
    HotColdWrites,
    MixedReadWrite,
    UniformRandomWrites,
    ZipfianWrites,
)


def device_config(num_blocks=96):
    return simulation_configuration(num_blocks=num_blocks, pages_per_block=16,
                                    page_size=256)


class TestSustainedOperation:
    def test_gecko_ftl_survives_multiple_device_overwrites(self):
        config = device_config()
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=128)
        fill_device(ftl)
        shadow = {logical: ("init", logical)
                  for logical in range(config.logical_pages)}
        workload = UniformRandomWrites(config.logical_pages, seed=41)
        writes = 3 * config.logical_pages  # several logical overwrites
        for operation in workload.operations(writes):
            ftl.write(operation.logical, operation.payload)
            shadow[operation.logical] = operation.payload
        mismatches = sum(1 for logical, payload in shadow.items()
                         if ftl.read(logical) != payload)
        assert mismatches == 0
        assert ftl.garbage_collector.collections > 10

    def test_skewed_workloads_also_preserve_data(self):
        config = device_config()
        for workload_class in (ZipfianWrites, HotColdWrites):
            ftl = GeckoFTL(FlashDevice(config), cache_capacity=128)
            fill_device(ftl)
            shadow = {logical: ("init", logical)
                      for logical in range(config.logical_pages)}
            workload = workload_class(config.logical_pages, seed=43)
            for operation in workload.operations(3000):
                ftl.write(operation.logical, operation.payload)
                shadow[operation.logical] = operation.payload
            mismatches = sum(1 for logical, payload in shadow.items()
                             if ftl.read(logical) != payload)
            assert mismatches == 0

    def test_mixed_read_write_workload(self):
        config = device_config()
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=128)
        fill_device(ftl)
        base = UniformRandomWrites(config.logical_pages, seed=47)
        workload = MixedReadWrite(base, read_fraction=0.4, seed=47)
        runner = WorkloadRunner(ftl, interval_writes=500)
        result = runner.run(workload, 3000)
        assert result.host_reads > 0
        assert result.host_writes > 0


class TestPaperShapeComparisons:
    """Coarse 'who wins' checks mirroring the evaluation's qualitative claims."""

    def test_gecko_validity_wa_is_far_below_flash_pvb(self):
        """Figure 9's core claim, measured through full FTLs."""
        results = {ftl.config.ftl_name: ftl for ftl in []}
        measurements = {}
        for name in ("GeckoFTL", "uFTL"):
            result = run_experiment(ExperimentConfig(
                ftl_name=name, device=device_config(), cache_capacity=128,
                write_operations=4000, interval_writes=1000))
            measurements[name] = result.wa_breakdown.get("validity", 0.0)
        assert measurements["GeckoFTL"] < 0.5 * measurements["uFTL"]

    def test_gecko_total_wa_is_lowest_among_flash_validity_ftls(self):
        """Figure 13 (bottom): GeckoFTL beats µ-FTL and IB-FTL overall."""
        results = compare_ftls(["GeckoFTL", "uFTL", "IB-FTL"],
                               device_config(), cache_capacity=128,
                               write_operations=4000)
        wa = {r.config.ftl_name: r.wa_total for r in results}
        assert wa["GeckoFTL"] < wa["uFTL"]
        assert wa["GeckoFTL"] < wa["IB-FTL"]

    def test_ram_footprint_ordering(self):
        """Figure 13 (top): flash-validity FTLs need far less integrated RAM.

        The advantage comes from replacing the PVB, whose size grows linearly
        with capacity, so the comparison is made on the validity component at
        a device size large enough for the linear term to dominate.
        """
        config = simulation_configuration(num_blocks=4096, pages_per_block=64,
                                          page_size=2048)
        gecko = GeckoFTL(FlashDevice(config), cache_capacity=128)
        dftl = DFTL(FlashDevice(config), cache_capacity=128)
        assert gecko.ram_breakdown()["validity"] < \
            dftl.ram_breakdown()["validity"]

    def test_bigger_cache_reduces_translation_overhead(self):
        """Figure 14's mechanism: freed RAM -> bigger cache -> fewer syncs."""
        measurements = {}
        for label, cache in (("small", 64), ("large", 512)):
            result = run_experiment(ExperimentConfig(
                ftl_name="GeckoFTL", device=device_config(),
                cache_capacity=cache, write_operations=4000,
                interval_writes=1000))
            measurements[label] = result.wa_breakdown.get("translation", 0.0)
        assert measurements["large"] < measurements["small"]


class TestCrashRecoveryUnderLoad:
    def test_crash_mid_benchmark_then_resume(self):
        config = device_config()
        ftl = GeckoFTL(FlashDevice(config), cache_capacity=96)
        fill_device(ftl)
        shadow = {logical: ("init", logical)
                  for logical in range(config.logical_pages)}
        rng = random.Random(59)
        for phase in range(3):
            for i in range(1200):
                logical = rng.randrange(config.logical_pages)
                payload = (phase, logical, i)
                ftl.write(logical, payload)
                shadow[logical] = payload
            recovery = GeckoRecovery(ftl)
            recovery.simulate_power_failure()
            report = recovery.recover()
            assert report.total_duration_us > 0
            mismatches = sum(1 for logical, payload in shadow.items()
                             if ftl.read(logical) != payload)
            assert mismatches == 0

    def test_recovery_cost_scales_with_device_not_with_history(self):
        """Recovery IO should not grow with how long the device has been running."""
        costs = []
        for writes in (1000, 4000):
            config = device_config()
            ftl = GeckoFTL(FlashDevice(config), cache_capacity=96)
            fill_device(ftl)
            workload = UniformRandomWrites(config.logical_pages, seed=61)
            for operation in workload.operations(writes):
                ftl.write(operation.logical, operation.payload)
            recovery = GeckoRecovery(ftl)
            recovery.simulate_power_failure()
            report = recovery.recover()
            costs.append(report.total_spare_reads + report.total_page_reads)
        # Allow generous slack: the longer history may leave more obsolete
        # metadata pages to scan, but cost must not grow with write count.
        assert costs[1] < costs[0] * 2


class TestBatteryVsBatteryless:
    def test_flush_makes_battery_ftl_state_durable(self):
        config = device_config()
        ftl = DFTL(FlashDevice(config), cache_capacity=96)
        fill_device(ftl, fraction=0.5)
        for logical in range(0, 100, 3):
            ftl.write(logical, ("durable", logical))
        ftl.flush()          # what the battery pays for at power failure
        ftl.cache.clear()    # power failure: RAM is gone
        for logical in range(0, 100, 3):
            assert ftl.read(logical) == ("durable", logical)

    def test_mu_ftl_validity_survives_ram_loss_without_flush(self):
        config = device_config()
        ftl = MuFTL(FlashDevice(config), cache_capacity=96)
        fill_device(ftl, fraction=0.5)
        ftl.write(5, "one")
        ftl.write(5, "two")
        # The flash-resident PVB's content survives losing RAM; only its small
        # directory would need recovery (not simulated for µ-FTL).
        assert ftl.validity_store.ram_bytes() < config.pvb_bytes
