"""Tests for the SimulationSession facade."""

import pytest

from repro import (
    DFTL,
    GeckoFTL,
    Operation,
    OpKind,
    SimulationSession,
    UniformRandomWrites,
    simulation_configuration,
)
from repro.core.recovery import RecoveryReport
from repro.flash.device import FlashDevice


def tiny_config():
    return simulation_configuration(num_blocks=64, pages_per_block=8,
                                    page_size=256)


class TestConstruction:
    def test_defaults_build_geckoftl_on_a_default_device(self):
        session = SimulationSession()
        assert isinstance(session.ftl, GeckoFTL)
        assert session.config.logical_pages > 0

    def test_accepts_spec_string_with_kwargs(self):
        session = SimulationSession("DFTL(cache_capacity=32)",
                                    device=tiny_config())
        assert isinstance(session.ftl, DFTL)
        assert session.ftl.cache.capacity == 32

    def test_ftl_kwargs_are_defaults_spec_wins(self):
        session = SimulationSession("DFTL(cache_capacity=32)",
                                    device=tiny_config(),
                                    ftl_kwargs={"cache_capacity": 512})
        assert session.ftl.cache.capacity == 32

    def test_accepts_prebuilt_ftl_and_device(self):
        device = FlashDevice(tiny_config())
        ftl = DFTL(device, cache_capacity=64)
        session = SimulationSession(ftl, device=device)
        assert session.ftl is ftl
        assert session.spec is None

    def test_rejects_ftl_on_a_foreign_device(self):
        ftl = DFTL(FlashDevice(tiny_config()), cache_capacity=64)
        with pytest.raises(ValueError, match="different device"):
            SimulationSession(ftl, device=FlashDevice(tiny_config()))

    def test_rejects_bogus_device(self):
        with pytest.raises(TypeError):
            SimulationSession("DFTL", device="not-a-device")

    def test_unknown_ftl_name_raises(self):
        with pytest.raises(ValueError, match="unknown FTL"):
            SimulationSession("NopeFTL", device=tiny_config())


class TestLifecycle:
    def test_warmup_fills_and_resets_stats(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        pages = session.warmup()
        assert pages == session.config.logical_pages
        assert session.stats.host_writes == 0
        assert session.read(pages - 1) is not None

    def test_warmup_can_keep_stats(self):
        session = SimulationSession("DFTL(cache_capacity=64)",
                                    device=tiny_config())
        pages = session.warmup(reset_stats=False)
        assert session.stats.host_writes == pages

    def test_run_measures_intervals(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config(),
                                    interval_writes=100)
        session.warmup()
        workload = UniformRandomWrites(session.config.logical_pages, seed=1)
        result = session.run(workload, 450)
        assert result.host_writes == 450
        assert len(result.intervals) == 5

    def test_snapshot_reports_wa_and_ram(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.run(UniformRandomWrites(session.config.logical_pages, seed=1),
                    300)
        snapshot = session.snapshot()
        assert snapshot.write_amplification > 0
        assert "user" in snapshot.wa_breakdown
        assert snapshot.ram_bytes == sum(snapshot.ram_breakdown.values())
        assert snapshot.row()["ftl"] == "GeckoFTL"
        # The snapshot is frozen in time: more IO must not change it.
        session.run(UniformRandomWrites(session.config.logical_pages, seed=2),
                    100)
        assert snapshot.stats.host_writes == 300

    def test_submit_and_host_passthrough(self):
        session = SimulationSession("DFTL(cache_capacity=64)",
                                    device=tiny_config())
        result = session.submit([Operation(OpKind.WRITE, 3, "three")])
        assert result.host_writes == 1
        assert session.read(3) == "three"
        session.write(4, "four")
        session.trim(3)
        assert session.read(3) is None

    def test_context_manager_flushes_on_exit(self):
        with SimulationSession("GeckoFTL(cache_capacity=64)",
                               device=tiny_config()) as session:
            session.warmup()
            session.run(
                UniformRandomWrites(session.config.logical_pages, seed=1), 200)
        assert session.ftl.cache.dirty_count == 0

    def test_describe_includes_spec_and_device(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        description = session.describe()
        assert description["spec"] == "GeckoFTL(cache_capacity=64)"
        assert "device" in description


class TestCrashRecovery:
    def test_gecko_crash_and_recover_round_trip(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.write(7, "precious")
        session.crash()
        report = session.recover()
        assert isinstance(report, RecoveryReport)
        assert session.read(7) == "precious"

    def test_battery_ftl_crash_is_a_flush(self):
        session = SimulationSession("DFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.write(7, "precious")
        session.crash()
        assert session.ftl.cache.dirty_count == 0
        report = session.recover()
        assert isinstance(report, RecoveryReport)
        assert [step.name for step in report.steps] == ["battery_flush"]
        assert session.read(7) == "precious"

    def test_unbatteried_competitors_recover_by_scanning(self):
        session = SimulationSession("LazyFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.write(7, "precious")
        session.crash()
        report = session.recover()
        assert isinstance(report, RecoveryReport)
        # The full scan reads at least one spare area per written page.
        assert report.total_spare_reads >= session.config.logical_pages
        assert session.read(7) == "precious"

    def test_recover_without_crash_is_a_noop(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        assert session.recover() is None

    def test_close_after_crash_is_a_noop(self):
        # Regression: close()/__exit__ used to flush() the power-failed FTL,
        # which reprograms flash from wiped RAM state.
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.write(7, "precious")
        session.crash()
        writes_after_crash = session.stats.page_writes
        session.close()
        assert session.stats.page_writes == writes_after_crash
        assert session.crashed
        # The session is still closable for real once recovered.
        session.recover()
        session.close()
        assert session.ftl.cache.dirty_count == 0

    def test_context_manager_exit_after_crash_does_not_flush(self):
        with SimulationSession("LazyFTL(cache_capacity=64)",
                               device=tiny_config()) as session:
            session.warmup()
            session.write(7, "precious")
            session.crash()
            writes_after_crash = session.stats.page_writes
        assert session.stats.page_writes == writes_after_crash

    def test_host_io_refused_while_crashed(self):
        session = SimulationSession("DFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.crash()
        with pytest.raises(RuntimeError, match="recover"):
            session.write(1, "x")
        with pytest.raises(RuntimeError, match="recover"):
            session.read(1)
        session.recover()
        session.write(1, "x")
        assert session.read(1) == "x"

    def test_crash_clears_stale_recovery_before_dispatch(self):
        # Regression: a failed crash dispatch used to leave the previous
        # crash's adapter in place, so a later recover() replayed it.
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.crash()
        session.recover()
        def broken():
            raise RuntimeError("adapter construction failed")
        session.ftl.make_recovery = broken
        with pytest.raises(RuntimeError, match="adapter construction"):
            session.crash()
        # No power failure actually happened: the session is not crashed,
        # recover() is a no-op, and host IO still works.
        assert not session.crashed
        assert session.recover() is None
        session.write(1, "still alive")
        assert session.read(1) == "still alive"

    def test_failed_power_failure_simulation_is_loud(self):
        # If the wipe itself dies mid-way the state is indeterminate;
        # recover() must say so instead of silently returning None.
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        class ExplodingAdapter:
            def simulate_power_failure(self):
                raise OSError("wipe interrupted")
        session.ftl.make_recovery = ExplodingAdapter
        with pytest.raises(OSError, match="wipe interrupted"):
            session.crash()
        assert session.crashed
        with pytest.raises(RuntimeError, match="indeterminate"):
            session.recover()

    def test_second_crash_replaces_recovery_adapter(self):
        session = SimulationSession("GeckoFTL(cache_capacity=64)",
                                    device=tiny_config())
        session.warmup()
        session.write(7, "precious")
        session.crash()
        session.crash()
        report = session.recover()
        assert isinstance(report, RecoveryReport)
        assert session.read(7) == "precious"
        assert session.recover() is None
