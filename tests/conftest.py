"""Shared fixtures for the test suite.

All simulation fixtures use deliberately tiny devices so that garbage
collection, Logarithmic Gecko merges, checkpoints, and recovery are all
exercised within a few thousand operations.
"""

from __future__ import annotations

import random

import pytest

from repro.core.gecko_ftl import GeckoFTL
from repro.flash.config import DeviceConfig, simulation_configuration
from repro.flash.device import FlashDevice
from repro.ftl.dftl import DFTL
from repro.ftl.ib_ftl import IBFTL
from repro.ftl.lazyftl import LazyFTL
from repro.ftl.mu_ftl import MuFTL
from repro.workloads.base import fill_device


@pytest.fixture
def tiny_config() -> DeviceConfig:
    """A very small device: 64 blocks x 8 pages of 256 bytes."""
    return simulation_configuration(num_blocks=64, pages_per_block=8,
                                    page_size=256)


@pytest.fixture
def small_config() -> DeviceConfig:
    """A small device large enough for multi-level Gecko structures."""
    return simulation_configuration(num_blocks=128, pages_per_block=16,
                                    page_size=256)


@pytest.fixture
def tiny_device(tiny_config) -> FlashDevice:
    return FlashDevice(tiny_config)


@pytest.fixture
def small_device(small_config) -> FlashDevice:
    return FlashDevice(small_config)


@pytest.fixture
def gecko_ftl(small_device) -> GeckoFTL:
    return GeckoFTL(small_device, cache_capacity=128)


@pytest.fixture
def filled_gecko_ftl(gecko_ftl) -> GeckoFTL:
    fill_device(gecko_ftl)
    return gecko_ftl


FTL_CLASSES = {
    "GeckoFTL": GeckoFTL,
    "DFTL": DFTL,
    "LazyFTL": LazyFTL,
    "uFTL": MuFTL,
    "IB-FTL": IBFTL,
}


@pytest.fixture(params=sorted(FTL_CLASSES))
def any_ftl(request, small_config):
    """Parameterized fixture instantiating every FTL on a fresh device."""
    device = FlashDevice(small_config)
    return FTL_CLASSES[request.param](device, cache_capacity=128)


def random_update_mix(ftl, shadow, count, seed, allow_reads=True):
    """Apply ``count`` random writes (and occasional reads) tracking a shadow map."""
    rng = random.Random(seed)
    logical_pages = ftl.config.logical_pages
    for i in range(count):
        logical = rng.randrange(logical_pages)
        payload = ("payload", logical, i, seed)
        ftl.write(logical, payload)
        shadow[logical] = payload
        if allow_reads and shadow and rng.random() < 0.05:
            probe = rng.choice(list(shadow))
            assert ftl.read(probe) == shadow[probe]
    return shadow
