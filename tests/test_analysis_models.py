"""Tests for the analytical RAM, recovery-time, cost, and slowdown models.

These tests pin the models to the paper's headline numbers: the 2 TB device's
64 MB PVB and ~1.4 MB GMD, the ~36 s PVB rebuild, the 95% RAM reduction and
the >=51% recovery-time reduction claimed for GeckoFTL.
"""

import pytest

from repro.analysis import cost_model, ram_model, recovery_model
from repro.analysis.slowdown import MixedWorkloadModel, compare_slowdown
from repro.flash.config import paper_configuration, simulation_configuration


@pytest.fixture(scope="module")
def paper():
    return paper_configuration()


class TestRamModel:
    def test_pvb_is_64_mb_at_paper_scale(self, paper):
        assert ram_model.pvb_bytes(paper) == 64 * 2**20

    def test_gmd_is_about_1_4_mb_at_paper_scale(self, paper):
        gmd_mb = ram_model.gmd_bytes(paper) / 2**20
        assert 1.2 <= gmd_mb <= 1.6

    def test_translation_table_is_about_1_4_gb(self, paper):
        tt_gb = ram_model.translation_table_bytes(paper) / 2**30
        assert 1.3 <= tt_gb <= 1.5

    def test_pvb_dominates_dftl_ram(self, paper):
        breakdown = ram_model.dftl_ram(paper)
        assert breakdown.components["pvb"] / breakdown.total > 0.9

    def test_gecko_ftl_reduces_ram_by_about_95_percent(self, paper):
        dftl = ram_model.dftl_ram(paper).total
        gecko = ram_model.gecko_ftl_ram(paper).total
        # Excluding the (identical) LRU cache budget, the reduction in
        # validity-related RAM should be ~95%.
        cache = ram_model.DEFAULT_CACHE_BYTES
        reduction = 1 - (gecko - cache) / (dftl - cache)
        assert reduction >= 0.85

    def test_mu_ftl_is_slightly_smaller_than_gecko_ftl(self, paper):
        mu = ram_model.mu_ftl_ram(paper).total
        gecko = ram_model.gecko_ftl_ram(paper).total
        assert mu <= gecko

    def test_ib_ftl_ram_exceeds_gecko_ftl(self, paper):
        ib = ram_model.ib_ftl_ram(paper).total
        gecko = ram_model.gecko_ftl_ram(paper).total
        assert ib > gecko

    def test_all_ftl_ram_returns_five_breakdowns(self, paper):
        breakdowns = ram_model.all_ftl_ram(paper)
        assert [b.ftl for b in breakdowns] == ["DFTL", "LazyFTL", "uFTL",
                                               "IB-FTL", "GeckoFTL"]

    def test_capacity_sweep_is_monotonic_for_lazyftl(self, paper):
        capacities = [2**34, 2**36, 2**38, 2**40, 2**41]
        rows = ram_model.capacity_sweep(capacities, paper, ftl="LazyFTL")
        ram = [row["ram_bytes"] for row in rows]
        assert ram == sorted(ram)

    def test_lazyftl_needs_about_4mb_at_128_gb(self, paper):
        # Figure 1: the integrated-RAM requirement at ~128 GB (excluding the
        # DRAM cache budget) reaches ~4 MB, the practical SRAM ceiling.
        rows = ram_model.capacity_sweep([2**37], paper, cache_bytes=0,
                                        ftl="LazyFTL")
        ram_mb = rows[0]["ram_mb"]
        assert 3.0 <= ram_mb <= 6.0

    def test_gecko_levels_positive(self, paper):
        assert ram_model.gecko_levels(paper) >= 1


class TestRecoveryModel:
    def test_lazyftl_pvb_rebuild_is_about_36_seconds(self, paper):
        breakdown = recovery_model.lazyftl_recovery(paper)
        seconds = breakdown.phases["pvb"].seconds(paper)
        assert 30 <= seconds <= 42

    def test_lazyftl_total_recovery_is_tens_of_seconds(self, paper):
        total = recovery_model.lazyftl_recovery(paper).total_seconds(paper)
        assert 40 <= total <= 120

    def test_gecko_ftl_reduces_recovery_by_at_least_51_percent(self, paper):
        lazy = recovery_model.lazyftl_recovery(paper).total_seconds(paper)
        gecko = recovery_model.gecko_ftl_recovery(paper).total_seconds(paper)
        assert gecko <= lazy * 0.49

    def test_gecko_ftl_has_no_pre_resume_synchronization(self, paper):
        breakdown = recovery_model.gecko_ftl_recovery(paper)
        assert breakdown.phases["lru_cache"].page_writes == 0
        assert breakdown.phases["lru_cache"].page_reads == 0

    def test_battery_ftls_skip_dirty_entry_recovery(self, paper):
        for builder in (recovery_model.dftl_recovery,
                        recovery_model.mu_ftl_recovery):
            breakdown = builder(paper)
            assert breakdown.requires_battery
            assert breakdown.phases["lru_cache"].seconds(paper) == 0

    def test_gecko_ftl_needs_no_battery(self, paper):
        assert not recovery_model.gecko_ftl_recovery(paper).requires_battery

    def test_ib_ftl_log_scan_is_significant(self, paper):
        breakdown = recovery_model.ib_ftl_recovery(paper)
        assert breakdown.phases["validity_log"].seconds(paper) > 1.0

    def test_block_type_scan_is_shared_by_all(self, paper):
        for breakdown in recovery_model.all_ftl_recovery(paper):
            assert breakdown.phases["block_type_scan"].spare_reads == \
                paper.num_blocks

    def test_capacity_sweep_is_monotonic(self, paper):
        capacities = [2**36, 2**38, 2**40, 2**41]
        rows = recovery_model.capacity_sweep(capacities, paper, ftl="LazyFTL")
        seconds = [row["recovery_seconds"] for row in rows]
        assert seconds == sorted(seconds)

    def test_recovery_at_2tb_exceeds_ten_seconds_for_lazyftl(self, paper):
        rows = recovery_model.capacity_sweep([2**41], paper, ftl="LazyFTL")
        assert rows[0]["recovery_seconds"] > 10


class TestCostModel:
    def test_table1_has_three_rows(self, paper):
        rows = cost_model.table1(paper)
        assert [row.technique for row in rows] == [
            "ram_pvb", "flash_pvb", "logarithmic_gecko"]

    def test_ram_pvb_has_no_io_but_large_ram(self, paper):
        row = cost_model.ram_pvb_costs(paper)
        assert row.update_writes == 0
        assert row.ram_bytes == paper.pvb_bytes

    def test_flash_pvb_update_is_read_modify_write(self, paper):
        row = cost_model.flash_pvb_costs(paper)
        assert row.update_reads == 1
        assert row.update_writes == 1
        assert row.gc_query_reads == 1

    def test_gecko_update_cost_is_subconstant(self, paper):
        row = cost_model.logarithmic_gecko_costs(paper)
        assert row.update_writes < 0.1

    def test_gecko_query_cost_is_logarithmic_levels(self, paper):
        row = cost_model.logarithmic_gecko_costs(paper)
        assert 1 <= row.gc_query_reads <= 40

    def test_gecko_wa_contribution_is_much_lower_than_flash_pvb(self, paper):
        ratio = cost_model.updates_per_gc_query(paper)
        gecko = cost_model.logarithmic_gecko_costs(paper)
        pvb = cost_model.flash_pvb_costs(paper)
        gecko_wa = gecko.write_amplification_contribution(paper, ratio)
        pvb_wa = pvb.write_amplification_contribution(paper, ratio)
        # The paper reports a ~98% reduction in validity write-amplification.
        assert gecko_wa <= 0.1 * pvb_wa

    def test_crossover_is_astronomically_far_away(self, paper):
        exponent = cost_model.crossover_block_count(paper, max_exponent=150)
        assert exponent >= 60

    def test_capacity_sweep_gecko_grows_slowly(self, paper):
        rows = cost_model.capacity_crossover_sweep(
            [2**18, 2**22, 2**26], paper)
        gecko = [row["gecko_wa"] for row in rows]
        pvb = [row["flash_pvb_wa"] for row in rows]
        assert gecko == sorted(gecko)                   # grows with capacity
        assert all(g < p for g, p in zip(gecko, pvb))   # but stays below PVB
        assert pvb[0] == pytest.approx(pvb[-1])         # PVB is flat

    def test_as_row_is_serializable(self, paper):
        row = cost_model.flash_pvb_costs(paper).as_row()
        assert row["technique"] == "flash_pvb"


class TestSlowdownModel:
    def test_slowdown_factor_formula(self):
        config = simulation_configuration()
        model = MixedWorkloadModel(read_amplification=1.0,
                                   write_amplification=2.0,
                                   reads_per_write=1.0)
        assert model.slowdown_factor(config) == pytest.approx(1 / 21.0)

    def test_lower_wa_means_higher_throughput(self):
        config = simulation_configuration()
        slow = MixedWorkloadModel(1.0, 3.0, 1.0).slowdown_factor(config)
        fast = MixedWorkloadModel(1.0, 1.5, 1.0).slowdown_factor(config)
        assert fast > slow

    def test_compare_slowdown_keys_match(self):
        config = simulation_configuration()
        factors = compare_slowdown(config, {"GeckoFTL": 1.5, "uFTL": 3.0})
        assert set(factors) == {"GeckoFTL", "uFTL"}
        assert factors["GeckoFTL"] > factors["uFTL"]

    def test_zero_denominator_rejected(self):
        config = simulation_configuration()
        with pytest.raises(ValueError):
            MixedWorkloadModel(0.0, 0.0, 0.0).slowdown_factor(config)
